"""Tests for the top-level Watchdog engine."""

import pytest

from repro.core.checks import CheckOutcome
from repro.core.config import WatchdogConfig
from repro.core.watchdog import Watchdog
from repro.errors import DoubleFreeError, UseAfterFreeError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import STACK_POINTER, int_reg


class TestRegisterMetadata:
    def test_malloc_attaches_metadata_to_register(self, watchdog):
        pointer = watchdog.malloc(64, int_reg(1))
        metadata = watchdog.get_register_metadata(int_reg(1))
        assert metadata is not None
        assert watchdog.identifiers.is_valid(metadata.identifier)
        assert watchdog.memory.layout.heap.contains(pointer)

    def test_stack_pointer_has_metadata_at_reset(self, watchdog):
        assert watchdog.get_register_metadata(STACK_POINTER) is not None

    def test_set_none_clears(self, watchdog):
        watchdog.malloc(8, int_reg(1))
        watchdog.set_register_metadata(int_reg(1), None)
        assert watchdog.get_register_metadata(int_reg(1)) is None


class TestChecks:
    def test_access_through_live_pointer_passes(self, watchdog):
        pointer = watchdog.malloc(64, int_reg(1))
        outcome = watchdog.check_access(int_reg(1), pointer, 8)
        assert outcome is CheckOutcome.PASS

    def test_access_after_free_raises(self, watchdog):
        pointer = watchdog.malloc(64, int_reg(1))
        watchdog.free(int_reg(1), pointer)
        with pytest.raises(UseAfterFreeError):
            watchdog.check_access(int_reg(1), pointer, 8)

    def test_access_after_free_and_reallocation_raises(self, watchdog):
        pointer = watchdog.malloc(64, int_reg(1))
        watchdog.set_register_metadata(int_reg(2),
                                       watchdog.get_register_metadata(int_reg(1)))
        watchdog.free(int_reg(1), pointer)
        watchdog.malloc(64, int_reg(3))      # reuses the chunk
        with pytest.raises(UseAfterFreeError):
            watchdog.check_access(int_reg(2), pointer, 8)

    def test_double_free_raises(self, watchdog):
        pointer = watchdog.malloc(64, int_reg(1))
        metadata = watchdog.get_register_metadata(int_reg(1))
        watchdog.free(int_reg(1), pointer)
        watchdog.malloc(64, int_reg(3))
        watchdog.set_register_metadata(int_reg(1), metadata)
        with pytest.raises(DoubleFreeError):
            watchdog.free(int_reg(1), pointer)

    def test_violations_recorded_when_not_halting(self):
        watchdog = Watchdog(WatchdogConfig(halt_on_violation=False))
        pointer = watchdog.malloc(64, int_reg(1))
        watchdog.free(int_reg(1), pointer)
        watchdog.check_access(int_reg(1), pointer, 8)
        assert len(watchdog.violations) == 1
        assert watchdog.violations[0].kind == "use-after-free"

    def test_disabled_watchdog_never_checks(self):
        watchdog = Watchdog(WatchdogConfig.disabled())
        pointer = watchdog.malloc(64, int_reg(1))
        watchdog.free(int_reg(1), pointer)
        assert watchdog.check_access(int_reg(1), pointer, 8) is CheckOutcome.PASS


class TestShadowAndPropagation:
    def test_shadow_store_load_roundtrip(self, watchdog):
        watchdog.malloc(64, int_reg(1))
        table = watchdog.malloc(64, int_reg(2))
        watchdog.shadow_store(table, int_reg(1))
        watchdog.shadow_load(int_reg(5), table)
        assert watchdog.get_register_metadata(int_reg(5)) == \
            watchdog.get_register_metadata(int_reg(1))

    def test_propagate_single_source(self, watchdog):
        watchdog.malloc(64, int_reg(1))
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(2), srcs=(int_reg(1),), imm=8)
        watchdog.propagate(inst)
        assert watchdog.get_register_metadata(int_reg(2)) == \
            watchdog.get_register_metadata(int_reg(1))

    def test_propagate_select_prefers_valid_source(self, watchdog):
        watchdog.malloc(64, int_reg(1))
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(3),
                           srcs=(int_reg(9), int_reg(1)))
        watchdog.propagate(inst)
        assert watchdog.get_register_metadata(int_reg(3)) == \
            watchdog.get_register_metadata(int_reg(1))

    def test_propagate_invalidates_for_non_pointer_producers(self, watchdog):
        watchdog.malloc(64, int_reg(1))
        inst = Instruction(Opcode.MUL_RR, dest=int_reg(1),
                           srcs=(int_reg(1), int_reg(2)))
        watchdog.propagate(inst)
        assert watchdog.get_register_metadata(int_reg(1)) is None

    def test_global_metadata_always_valid(self, watchdog):
        metadata = watchdog.global_metadata()
        assert watchdog.identifiers.is_valid(metadata.identifier)
        outcome = watchdog.checker.identifier_check(
            metadata, watchdog.memory.layout.globals_seg.base)
        assert outcome is CheckOutcome.PASS

    def test_global_metadata_has_bounds_with_bounds_config(self):
        watchdog = Watchdog(WatchdogConfig.full_safety_fused())
        assert watchdog.global_metadata().has_bounds


class TestCallsAndFrames:
    def test_call_changes_stack_pointer_metadata(self, watchdog):
        before = watchdog.get_register_metadata(STACK_POINTER)
        watchdog.on_call()
        after = watchdog.get_register_metadata(STACK_POINTER)
        assert before.identifier != after.identifier
        watchdog.on_return()
        restored = watchdog.get_register_metadata(STACK_POINTER)
        assert restored.identifier == before.identifier

    def test_stale_frame_pointer_fails_after_return(self, watchdog):
        watchdog.on_call()
        frame_metadata = watchdog.frames.current_frame_metadata()
        watchdog.set_register_metadata(int_reg(4), frame_metadata)
        watchdog.on_return()
        with pytest.raises(UseAfterFreeError):
            watchdog.check_access(int_reg(4), 0x7000_0000, 8)

    def test_expand_delegates_to_injector(self, watchdog):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        assert len(watchdog.expand(inst)) >= 2
        assert watchdog.injection_stats.check_uops == 1
