"""Tests for the program IR and builder."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import Opcode, PointerHint
from repro.isa.registers import int_reg
from repro.program.builder import FunctionBuilder, ProgramBuilder
from repro.program.ir import Function, OpKind, Operation, Program


class TestOperationValidation:
    def test_malloc_requires_dest_and_size(self):
        with pytest.raises(ProgramError):
            Operation(kind=OpKind.MALLOC, dest=int_reg(1), size=0)
        with pytest.raises(ProgramError):
            Operation(kind=OpKind.MALLOC, size=8)

    def test_free_requires_source(self):
        with pytest.raises(ProgramError):
            Operation(kind=OpKind.FREE)

    def test_call_requires_callee(self):
        with pytest.raises(ProgramError):
            Operation(kind=OpKind.CALL)

    def test_macro_requires_instruction(self):
        with pytest.raises(ProgramError):
            Operation(kind=OpKind.MACRO)

    def test_str_rendering(self):
        op = Operation(kind=OpKind.MALLOC, dest=int_reg(1), size=64)
        assert "malloc" in str(op) and "r1" in str(op)


class TestProgramStructure:
    def test_duplicate_function_rejected(self):
        program = Program()
        program.add_function(Function("main"))
        with pytest.raises(ProgramError):
            program.add_function(Function("main"))

    def test_missing_entry_rejected(self):
        program = Program()
        program.add_function(Function("helper"))
        with pytest.raises(ProgramError):
            program.validate()

    def test_unknown_callee_rejected(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.call("missing")
        with pytest.raises(ProgramError):
            builder.build()

    def test_unknown_function_lookup(self):
        program = Program()
        with pytest.raises(ProgramError):
            program.function("nope")

    def test_static_operation_count(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.mov_imm("r1", 1).mov_imm("r2", 2)
        assert builder.build().static_operation_count == 2


class TestBuilderApi:
    def test_methods_chain(self):
        function = (FunctionBuilder("f")
                    .mov_imm("r1", 5)
                    .add_imm("r2", "r1", 3)
                    .nop()
                    .build())
        assert len(function) == 3

    def test_load_store_emit_macro_operations(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 32)
            main.store("r1", "r2", 8)
            main.load("r3", "r1", 8)
        program = builder.build()
        kinds = [op.kind for op in program.function("main")]
        assert kinds == [OpKind.MALLOC, OpKind.MACRO, OpKind.MACRO]

    def test_pointer_annotated_helpers(self):
        builder = FunctionBuilder("f")
        builder.load_ptr("r1", "r2").store_ptr("r2", "r1")
        ops = builder.build().operations
        assert all(op.instruction.pointer_hint is PointerHint.POINTER for op in ops)

    def test_stack_alloc_grows_frame(self):
        builder = FunctionBuilder("f")
        builder.stack_alloc("r1", 32).stack_alloc("r2", 16)
        assert builder.build().frame_bytes == 48

    def test_fp_helpers_use_fp_opcodes(self):
        builder = FunctionBuilder("f")
        builder.fload("f1", "r2").fstore("r2", "f1")
        opcodes = [op.instruction.opcode for op in builder.build().operations]
        assert opcodes == [Opcode.FLOAD, Opcode.FSTORE]

    def test_invalid_access_size_rejected(self):
        with pytest.raises(ProgramError):
            FunctionBuilder("f").load("r1", "r2", size=3)

    def test_register_names_and_objects_interchangeable(self):
        builder = FunctionBuilder("f")
        builder.mov(int_reg(1), "r2")
        op = builder.build().operations[0]
        assert op.instruction.dest == int_reg(1)
        assert op.instruction.srcs == (int_reg(2),)

    def test_program_iterates_all_instructions(self):
        builder = ProgramBuilder()
        with builder.function("helper") as helper:
            helper.nop().ret()
        with builder.function("main") as main:
            main.call("helper")
        program = builder.build()
        assert len(list(program.all_instructions())) == 1  # the nop
