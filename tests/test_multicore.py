"""Multi-core mix simulation: shared hierarchy, interleaved replay, results.

Pins the contracts the multi-core path lives by:

* **1-core identity** — a ``mixK:1@i`` mix produces a bit-identical
  ``TimingResult``/``CellResult`` to the single-core path running the same
  member bundle, with the native timing core on and off (the non-negotiable
  golden invariant of the shared-hierarchy refactor).
* **Native/Python equality at 4 cores** — the epoch-interleaved replay is
  bit-identical whether the shared levels live in C arenas or OrderedDicts.
* **Shared-state staleness guards** — a native batch on one core makes the
  backend's shared L2/L3/lock-cache OrderedDicts stale for *every* attached
  core; any Python-path consumer on a sibling core must sync first.
* Mix token grammar, per-member seed derivation, per-core result blocks and
  their cache round-trip, and the ``mix_overhead`` experiment end to end.
"""

import dataclasses
import json

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.memory.hierarchy import MemoryHierarchy, SharedMemoryBackend
from repro.native import _timecore
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import OutOfOrderCore, _derived_hierarchy_config
from repro.sim.cache import ResultCache
from repro.sim.multicore import MultiCoreSimulator
from repro.sim.results import CellResult, CoreResult
from repro.sim.sampling import SamplingConfig
from repro.sim.simulator import Simulator
from repro.sim.spec import RunRequest
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import (
    MIXES,
    mix_by_name,
    mix_member_seed,
    mix_names,
    parse_mix_benchmark,
)

KERNEL_AVAILABLE = _timecore.load() is not None
needs_kernel = pytest.mark.skipif(not KERNEL_AVAILABLE,
                                  reason="native timing core unavailable")

SEED = 11
INSTRUCTIONS = 600

CONFIGURATIONS = {
    "baseline": WatchdogConfig.disabled(),
    "isa-assisted": WatchdogConfig.isa_assisted_uaf(),
}

#: Solo tokens covering five distinct member profiles across two mixes.
SOLO_TOKENS = {
    "mix1:1@0": "lbm",
    "mix1:1@1": "milc",
    "mix1:1@3": "mcf",
    "mix5:1@2": "gzip",
    "mix5:1@3": "comp",
}

TIMECORE_MODES = (
    pytest.param(False, id="python"),
    pytest.param(True, id="native", marks=needs_kernel),
)


def _mix_bundles(token, instructions=INSTRUCTIONS, seed=SEED):
    """The member bundles a mix token resolves to, under its derived seeds."""
    mix, members = parse_mix_benchmark(token)
    bundles = [TraceBundle.generate(
        profile_name,
        seed=mix_member_seed(mix.name, member_index, seed),
        instructions=instructions) for member_index, profile_name in members]
    return mix, members, bundles


class TestMixGrammar:
    def test_all_mixes_have_four_members_of_known_profiles(self):
        from repro.workloads.profiles import profile_by_name

        assert mix_names() == [mix.name for mix in MIXES]
        for mix in MIXES:
            assert len(mix.members) == 4
            for member in mix.members:
                profile_by_name(member)  # raises on unknown

    def test_plain_token_selects_every_member(self):
        mix, members = parse_mix_benchmark("mix1")
        assert mix is mix_by_name("mix1")
        assert members == tuple(enumerate(mix.members))

    def test_count_and_start_select_a_slice(self):
        _, members = parse_mix_benchmark("mix1:2")
        assert [index for index, _ in members] == [0, 1]
        mix, members = parse_mix_benchmark("mix1:1@3")
        assert members == ((3, mix.members[3]),)

    def test_non_mix_names_parse_to_none(self):
        for name in ("gzip", "mcf-long", ""):
            assert parse_mix_benchmark(name) is None

    def test_bad_tokens_raise(self):
        # "mix"-prefixed names that are neither a mix nor a profile are
        # treated as typos, not ordinary benchmarks.
        for token in ("mix9", "mixture", "mix", "mix1:0", "mix1:5",
                      "mix1:2@3", "mix1:x"):
            with pytest.raises(ConfigurationError):
                parse_mix_benchmark(token)

    def test_member_seeds_are_deterministic_and_distinct(self):
        seeds = [mix_member_seed("mix1", index, SEED) for index in range(4)]
        assert seeds == [mix_member_seed("mix1", index, SEED)
                         for index in range(4)]
        assert len(set(seeds)) == 4
        # Different mixes decorrelate the same member slot; the base seed
        # still shifts every member.
        assert mix_member_seed("mix2", 0, SEED) != seeds[0]
        assert mix_member_seed("mix1", 0, SEED + 1) != seeds[0]


class TestSingleCoreIdentity:
    """The golden invariant: a 1-core mix IS the single-core path."""

    @pytest.mark.parametrize("timecore", TIMECORE_MODES)
    @pytest.mark.parametrize("token", sorted(SOLO_TOKENS))
    def test_one_core_mix_matches_solo_bit_for_bit(self, token, timecore):
        mix, members, bundles = _mix_bundles(token)
        (member_index, profile_name), = members
        assert profile_name == SOLO_TOKENS[token]
        solo_sim = Simulator(pipeline="compiled", timecore=timecore)
        mix_sim = MultiCoreSimulator(pipeline="compiled", timecore=timecore)
        for label, config in CONFIGURATIONS.items():
            solo = solo_sim.run_bundle(bundles[0], config)
            mixed = mix_sim.run_mix(token, bundles, config)
            assert mixed.timing == solo.timing, \
                f"{token}/{label}: timing diverged from solo"
            solo_cell = CellResult.from_outcome(solo, label=label)
            mix_cell = CellResult.from_outcome(mixed, label=label)
            assert mix_cell.benchmark == token
            assert len(mix_cell.cores) == 1
            assert mix_cell.cores[0].benchmark == profile_name
            assert dataclasses.replace(mix_cell, benchmark=solo_cell.benchmark,
                                       cores=()) == solo_cell, \
                f"{token}/{label}: statistics diverged from solo"


class TestMultiCoreReplay:
    @needs_kernel
    def test_four_core_mix_native_matches_python(self):
        _, members, bundles = _mix_bundles("mix1")
        kernel_sim = MultiCoreSimulator(pipeline="compiled", timecore=True)
        python_sim = MultiCoreSimulator(pipeline="compiled", timecore=False)
        for label, config in CONFIGURATIONS.items():
            kernel = kernel_sim.run_mix("mix1", bundles, config)
            python = python_sim.run_mix("mix1", bundles, config)
            assert CellResult.from_outcome(kernel, label=label) == \
                CellResult.from_outcome(python, label=label), \
                f"mix1/{label}: native and Python replay diverged"

    @pytest.mark.parametrize("timecore", TIMECORE_MODES)
    def test_per_core_blocks_attribute_the_totals(self, timecore):
        _, members, bundles = _mix_bundles("mix1")
        simulator = MultiCoreSimulator(pipeline="compiled", timecore=timecore)
        outcome = simulator.run_mix("mix1", bundles,
                                    CONFIGURATIONS["isa-assisted"])
        cell = CellResult.from_outcome(outcome, label="isa-assisted")
        assert [core.core for core in cell.cores] == [0, 1, 2, 3]
        assert [core.benchmark for core in cell.cores] == \
            [profile for _, profile in members]
        assert sum(core.total_uops for core in cell.cores) == cell.total_uops
        assert sum(core.lock_cache_misses for core in cell.cores) == \
            cell.lock_cache_misses
        assert sum(core.memory_accesses for core in cell.cores) == \
            cell.memory_accesses
        # The mix's cycle count is the slowest core's, not the sum: the
        # cores run concurrently.
        assert cell.cycles == max(core.cycles for core in cell.cores)
        for core in cell.cores:
            assert core.cycles > 0 and core.total_uops > 0

    def test_simulator_rejects_reference_pipeline_and_sampled_bundles(self):
        with pytest.raises(ConfigurationError):
            MultiCoreSimulator(pipeline="reference")
        sampling = SamplingConfig(fast_forward=313, warmup=328, sample=356)
        sampled = TraceBundle.generate("mcf-long", seed=SEED,
                                       instructions=4_000, sampling=sampling)
        assert sampled.samples
        simulator = MultiCoreSimulator(pipeline="compiled")
        with pytest.raises(ConfigurationError):
            simulator.run_mix("mix1", [sampled],
                              CONFIGURATIONS["baseline"])

    def test_mix_token_rejects_sampling_schedule_at_spec_build(self):
        with pytest.raises(ConfigurationError):
            RunRequest(benchmark="mix1", label="baseline",
                       config=CONFIGURATIONS["baseline"],
                       instructions=1_000_000,
                       sampling=SamplingConfig.quick())


@needs_kernel
class TestSharedStateSync:
    """Staleness guards: native batches vs Python-path readers on siblings."""

    @staticmethod
    def _core_pair(native_flags):
        """Two cores over one shared backend, each forced native or Python."""
        machine = MachineConfig()
        config = WatchdogConfig.isa_assisted_uaf()
        backend = SharedMemoryBackend(_derived_hierarchy_config(
            machine.hierarchy, config.lock_cache_enabled,
            config.ideal_shadow))
        cores = [OutOfOrderCore(machine=machine, watchdog=config,
                                hierarchy=MemoryHierarchy(shared=backend,
                                                          core_id=index),
                                timecore=flag)
                 for index, flag in enumerate(native_flags)]
        return backend, [core.hierarchy for core in cores]

    @staticmethod
    def _access_plan(cores, length=2_000, seed=99):
        import random

        rng = random.Random(seed)
        plans = []
        for _ in range(cores):
            addrs, specs = [], []
            for _ in range(length):
                addrs.append(rng.randrange(1 << 22))
                specs.append(rng.randrange(3) | rng.randrange(2) << 2 | 8)
            plans.append((addrs, specs))
        return plans

    def test_sibling_sees_native_batch_as_dirty_and_syncs(self):
        backend, (native_h, python_h) = self._core_pair((True, False))
        (addrs, specs), _ = self._access_plan(2)
        lats = [0] * len(addrs)
        native_h.access_batch(addrs, specs, list(range(len(addrs))), lats)
        # The native batch left the backend's arenas authoritative: the
        # shared OrderedDicts are stale for BOTH cores, including the
        # sibling that never ran a native batch.
        assert "_tc_shared" in backend.__dict__
        assert native_h._tc_dirty() and python_h._tc_dirty()
        # A Python-path read on the sibling must sync before touching the
        # structures: the line the native core installed in the shared L3
        # hits from the other core.
        l3_misses_before = backend.l3.misses
        python_h.access(addrs[0], is_write=False)
        assert "_tc_shared" not in backend.__dict__
        assert backend.l3.misses == l3_misses_before
        # Attribution followed the reader, not the installer.
        assert python_h.stats.shared["l3_misses"] == 0

    def test_interleaved_mixed_path_batches_match_pure_python(self):
        """Alternating native/Python per-core batches == all-Python twin."""
        EPOCH = 512
        mixed_backend, mixed = self._core_pair((True, False))
        twin_backend, twin = self._core_pair((False, False))
        plans = self._access_plan(2)
        length = len(plans[0][0])
        # Positions are absolute indices into the latency buffer, so each
        # core owns one full-length buffer across all its epoch batches —
        # exactly how MultiCoreSimulator._replay_interleaved drives it.
        lats = {id(hierarchies): [[0] * length for _ in hierarchies]
                for hierarchies in (mixed, twin)}
        offset = 0
        while offset < length:
            stop = offset + EPOCH
            for hierarchies in (mixed, twin):
                for index, ((addrs, specs), hierarchy) in enumerate(
                        zip(plans, hierarchies)):
                    hierarchy.access_batch(
                        addrs[offset:stop], specs[offset:stop],
                        list(range(offset, min(stop, length))),
                        lats[id(hierarchies)][index])
            offset = stop
        assert lats[id(mixed)] == lats[id(twin)]
        for mixed_h, twin_h in zip(mixed, twin):
            assert _timecore._same_hierarchy(mixed_h, twin_h)
        for shared_name in ("l2", "l3", "lock_cache"):
            mixed_cache = getattr(mixed_backend, shared_name)
            twin_cache = getattr(twin_backend, shared_name)
            assert (mixed_cache.hits, mixed_cache.misses) == \
                (twin_cache.hits, twin_cache.misses)

    def test_python_mutation_invalidates_exported_shared_state(self):
        """After a sibling's Python batch, the next native batch re-exports."""
        backend, (native_h, python_h) = self._core_pair((True, False))
        plans = self._access_plan(2, length=1_500)
        mixed_lats = [[0] * 1_500 for _ in range(2)]
        for start, stop in ((0, 500), (500, 1_000), (1_000, 1_500)):
            for index, ((addrs, specs), hierarchy) in enumerate(
                    zip(plans, (native_h, python_h))):
                hierarchy.access_batch(
                    addrs[start:stop], specs[start:stop],
                    list(range(start, stop)), mixed_lats[index])
        # The final Python batch synced and mutated the OrderedDicts, so no
        # exported shared state may linger as authoritative.
        assert "_tc_shared" not in backend.__dict__
        twin_backend, twins = self._core_pair((False, False))
        twin_lats = [[0] * 1_500 for _ in range(2)]
        for start, stop in ((0, 500), (500, 1_000), (1_000, 1_500)):
            for index, ((addrs, specs), hierarchy) in enumerate(
                    zip(plans, twins)):
                hierarchy.access_batch(
                    addrs[start:stop], specs[start:stop],
                    list(range(start, stop)), twin_lats[index])
        assert mixed_lats == twin_lats
        for mixed_h, twin_h in zip((native_h, python_h), twins):
            assert _timecore._same_hierarchy(mixed_h, twin_h)


class TestResultPlumbing:
    def _mix_cell(self):
        _, _, bundles = _mix_bundles("mix5:2")
        simulator = MultiCoreSimulator(pipeline="compiled")
        outcome = simulator.run_mix("mix5:2", bundles,
                                    CONFIGURATIONS["isa-assisted"])
        return CellResult.from_outcome(outcome, label="isa-assisted")

    def test_cores_survive_dict_and_json_round_trip(self):
        cell = self._mix_cell()
        assert len(cell.cores) == 2
        assert all(isinstance(core, CoreResult) for core in cell.cores)
        restored = CellResult.from_dict(
            json.loads(json.dumps(cell.to_dict())))
        assert restored == cell
        assert isinstance(restored.cores, tuple)
        hash(restored)  # cache keys require hashable cells

    def test_cores_survive_the_result_cache(self, tmp_path):
        cell = self._mix_cell()
        cache = ResultCache(str(tmp_path))
        cache.store("mix-cell-key", cell)
        assert cache.load("mix-cell-key") == cell


class TestMixOverheadExperiment:
    def test_quick_run_reports_contention_and_per_core_stats(self):
        from repro.experiments import mix_overhead
        from repro.experiments.common import ExperimentSettings

        result = mix_overhead.run(settings=ExperimentSettings.quick())
        assert result.summary["mix_count"] == 2.0
        for series in ("overhead_percent_1core", "overhead_percent_2core",
                       "overhead_percent_4core", "lock_mpki_4core",
                       "lock_contention_mpki"):
            assert set(result.series[series]) == {"mix1", "mix5"}
        # Per-core attribution rows exist for every member of every mix.
        per_core = result.series["core_ipc"]
        assert len(per_core) == 8
        for mix_name in ("mix1", "mix5"):
            for index, member in enumerate(mix_by_name(mix_name).members):
                row = f"{mix_name}/c{index}:{member}"
                assert row in per_core and per_core[row] > 0
        assert "mean_lock_contention_mpki" in result.summary
        assert "watchdog_geomean_percent_4core" in result.summary

    def test_quick_summary_matches_pinned_golden(self):
        """The mix family's golden regression net (quick scale: mix1+mix5).

        The sampled-suite golden in ``test_experiment_registry`` excludes
        ``mix_overhead`` (mixes measure their full horizon unsampled, which
        is a multi-minute run at the 120k golden horizon); this pin covers
        the multi-core path instead — any drift in member seed derivation,
        warm-up ordering, epoch interleaving, shared-level attribution or
        the overhead/contention extraction shows up here.
        """
        from repro.experiments import mix_overhead
        from repro.experiments.common import ExperimentSettings

        result = mix_overhead.run(settings=ExperimentSettings.quick())
        assert result.summary == pytest.approx({
            "mix_count": 2.0,
            "watchdog_geomean_percent_1core": 12.901296439088682,
            "watchdog_geomean_percent_4core": 13.726970471573008,
            "mean_lock_contention_mpki": -0.12682271070623546,
        }, rel=1e-9)
