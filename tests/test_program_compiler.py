"""Tests for the pointer-annotation compiler pass (§5.2)."""

import pytest

from repro.isa.instructions import Opcode, PointerHint
from repro.program.builder import ProgramBuilder
from repro.program.compiler import annotate_pointer_hints


def hints_of(program, function="main"):
    return [op.instruction.pointer_hint
            for op in program.function(function)
            if op.kind.value == "macro" and op.instruction.opcode in
            (Opcode.LOAD, Opcode.STORE)]


class TestStoreAnnotation:
    def test_store_of_malloc_result_is_pointer_store(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.malloc("r2", 64)
            main.store("r2", "r1")       # table[0] = p
        program = builder.build()
        stats = annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.POINTER]
        assert stats.stores_annotated_pointer == 1

    def test_store_of_constant_is_not_pointer_store(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.mov_imm("r8", 5)
            main.store("r1", "r8")
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.NOT_POINTER]

    def test_pointer_status_follows_copies_and_arithmetic(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.add_imm("r2", "r1", 8)    # still a pointer
            main.malloc("r3", 64)
            main.store("r3", "r2")
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.POINTER]

    def test_multiply_kills_pointerness(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.mul("r2", "r1", "r1")
            main.malloc("r3", 64)
            main.store("r3", "r2")
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.NOT_POINTER]


class TestLoadAnnotation:
    def test_load_from_pointer_table_is_pointer_load(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.malloc("r2", 64)
            main.store("r2", "r1")         # pointer stored through r2
            main.load("r3", "r2")          # reload it
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.POINTER, PointerHint.POINTER]

    def test_plain_data_load_is_not_pointer_load(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.load("r3", "r1")
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.NOT_POINTER]

    def test_subword_accesses_never_annotated_pointer(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.malloc("r2", 64)
            main.store("r2", "r1", size=4)
            main.load("r3", "r2", size=4)
        program = builder.build()
        annotate_pointer_hints(program)
        assert all(h is PointerHint.NOT_POINTER for h in hints_of(program))

    def test_stack_and_global_addresses_count_as_pointers(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.stack_alloc("r1", 16)
            main.global_addr("r2", 0)
            main.store("r2", "r1")
        program = builder.build()
        annotate_pointer_hints(program)
        assert hints_of(program) == [PointerHint.POINTER]

    def test_stats_cover_all_word_memory_operations(self):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.store("r1", "r1")
            main.load("r2", "r1")
            main.fload("f0", "r1")
        program = builder.build()
        stats = annotate_pointer_hints(program)
        assert stats.total_annotated == 2

    def test_annotation_reduces_isa_assisted_classification(self):
        """End to end: the pass should make ISA-assisted identification treat
        fewer memory accesses as pointer ops than conservative identification."""
        from repro.core.pointer_id import ConservativeIdentifier, IsaAssistedIdentifier
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.mov_imm("r8", 1)
            for _ in range(5):
                main.store("r1", "r8")
            main.malloc("r2", 64)
            main.store("r2", "r1")
        program = builder.build()
        annotate_pointer_hints(program)
        conservative, assisted = ConservativeIdentifier(), IsaAssistedIdentifier()
        for inst in program.all_instructions():
            if inst.is_memory:
                conservative.is_pointer_operation(inst)
                assisted.is_pointer_operation(inst)
        assert assisted.stats.pointer_ops < conservative.stats.pointer_ops
