"""Tests for the instrumented malloc/free runtime (Figure 3a/3b)."""

import pytest

from repro.allocator.runtime import InstrumentedRuntime
from repro.core.identifier import INVALID_KEY
from repro.errors import DoubleFreeError, InvalidFreeError


@pytest.fixture
def runtime(memory):
    return InstrumentedRuntime(memory)


class TestMalloc:
    def test_malloc_returns_pointer_and_metadata(self, runtime, memory):
        pointer, metadata = runtime.malloc(64)
        assert memory.layout.heap.contains(pointer)
        assert metadata.identifier.key > 0

    def test_key_written_to_lock_location(self, runtime, memory):
        _, metadata = runtime.malloc(64)
        assert memory.load_word(metadata.identifier.lock) == metadata.identifier.key

    def test_every_allocation_gets_unique_key(self, runtime):
        keys = {runtime.malloc(32)[1].identifier.key for _ in range(50)}
        assert len(keys) == 50

    def test_bounds_attached_when_tracking_bounds(self, memory):
        runtime = InstrumentedRuntime(memory, track_bounds=True)
        pointer, metadata = runtime.malloc(48)
        assert metadata.base == pointer
        assert metadata.bound == pointer + 48

    def test_no_bounds_by_default(self, runtime):
        _, metadata = runtime.malloc(48)
        assert not metadata.has_bounds

    def test_live_allocation_bookkeeping(self, runtime):
        pointer, _ = runtime.malloc(64)
        assert runtime.live_allocations() == 1
        assert runtime.record_for(pointer).size == 64
        assert runtime.record_containing(pointer + 8).base == pointer
        assert runtime.total_live_bytes() == 64


class TestFree:
    def test_free_invalidates_identifier(self, runtime, memory):
        pointer, metadata = runtime.malloc(64)
        runtime.free(pointer, metadata)
        assert memory.load_word(metadata.identifier.lock) == INVALID_KEY
        assert runtime.live_allocations() == 0

    def test_lock_location_recycled_lifo(self, runtime):
        pointer, metadata = runtime.malloc(64)
        runtime.free(pointer, metadata)
        _, metadata2 = runtime.malloc(64)
        assert metadata2.identifier.lock == metadata.identifier.lock
        assert metadata2.identifier.key != metadata.identifier.key

    def test_double_free_detected(self, runtime):
        pointer, metadata = runtime.malloc(64)
        runtime.free(pointer, metadata)
        # reallocate the same chunk so the memory is "valid" again
        runtime.malloc(64)
        with pytest.raises(DoubleFreeError):
            runtime.free(pointer, metadata)

    def test_free_without_metadata_detected(self, runtime):
        pointer, _ = runtime.malloc(64)
        with pytest.raises(InvalidFreeError):
            runtime.free(pointer, None)

    def test_free_of_interior_pointer_detected(self, runtime):
        pointer, metadata = runtime.malloc(64)
        with pytest.raises(InvalidFreeError):
            runtime.free(pointer + 8, metadata)

    def test_reallocation_key_differs_even_for_same_address(self, runtime):
        """The comprehensive-detection property (§2.2): the reused chunk gets a
        fresh identifier, so the stale identifier can never validate."""
        pointer, metadata = runtime.malloc(64)
        runtime.free(pointer, metadata)
        again, metadata2 = runtime.malloc(64)
        assert again == pointer
        assert metadata2.identifier.key != metadata.identifier.key
        assert not runtime.identifiers.is_valid(metadata.identifier)
        assert runtime.identifiers.is_valid(metadata2.identifier)

    def test_instruction_cost_accounting(self, runtime):
        pointer, metadata = runtime.malloc(64)
        runtime.free(pointer, metadata)
        assert runtime.runtime_instructions > 0
        assert runtime.instrumentation_instructions > 0
        assert runtime.malloc_calls == 1 and runtime.free_calls == 1
