"""Tests for workload profiles, the synthetic generator, Juliet suite and attacks."""

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.isa.instructions import Opcode, PointerHint
from repro.program.machine import Machine
from repro.workloads.attacks import ATTACKER_VALUE, all_attack_scenarios, scenario_by_name
from repro.workloads.juliet import JULIET_CASE_COUNT, JulietSuite
from repro.workloads.profiles import SPEC_PROFILES, benchmark_names, profile_by_name
from repro.workloads.synthetic import SyntheticWorkload


class TestProfiles:
    def test_twenty_benchmarks(self):
        assert len(SPEC_PROFILES) == 20
        assert len(set(benchmark_names())) == 20

    def test_lookup_by_name(self):
        assert profile_by_name("gcc").name == "gcc"
        with pytest.raises(ConfigurationError):
            profile_by_name("unknown")

    def test_pointer_fraction_never_exceeds_word_fraction(self):
        for profile in SPEC_PROFILES:
            assert profile.pointer_fraction <= profile.word_integer_fraction

    def test_average_fractions_match_figure5_targets(self):
        """Profiles are calibrated so conservative ≈31% and ISA ≈18% (Fig 5)."""
        word = sum(p.word_integer_fraction for p in SPEC_PROFILES) / 20
        pointer = sum(p.pointer_fraction for p in SPEC_PROFILES) / 20
        assert 0.26 <= word <= 0.36
        assert 0.14 <= pointer <= 0.22

    def test_pointer_dense_benchmarks_are_the_integer_codes(self):
        assert profile_by_name("mcf").pointer_fraction > profile_by_name("lbm").pointer_fraction
        assert profile_by_name("gcc").pointer_fraction > profile_by_name("milc").pointer_fraction


class TestSyntheticWorkload:
    def test_trace_length(self):
        workload = SyntheticWorkload(profile_by_name("gzip"), seed=1)
        assert len(workload.trace(500)) == 500

    def test_deterministic_for_same_seed(self):
        first = SyntheticWorkload(profile_by_name("gcc"), seed=3).trace(300)
        second = SyntheticWorkload(profile_by_name("gcc"), seed=3).trace(300)
        assert [str(d.instruction) for d in first] == [str(d.instruction) for d in second]
        assert [d.address for d in first] == [d.address for d in second]

    def test_different_seeds_differ(self):
        first = SyntheticWorkload(profile_by_name("gcc"), seed=1).trace(300)
        second = SyntheticWorkload(profile_by_name("gcc"), seed=2).trace(300)
        assert [d.address for d in first] != [d.address for d in second]

    def test_memory_ops_have_addresses_and_locks(self):
        workload = SyntheticWorkload(profile_by_name("perl"), seed=5)
        for dop in workload.trace(400):
            if dop.instruction.is_memory:
                assert dop.address is not None
                assert dop.lock_address is not None

    def test_memory_mix_tracks_profile(self):
        profile = profile_by_name("mcf")
        workload = SyntheticWorkload(profile, seed=9)
        trace = workload.trace(4000)
        memory_ops = [d for d in trace if d.instruction.is_memory]
        fraction = len(memory_ops) / len(trace)
        assert abs(fraction - profile.memory_fraction) < 0.08
        pointer_ops = [d for d in memory_ops
                       if d.instruction.pointer_hint is PointerHint.POINTER]
        assert abs(len(pointer_ops) / len(memory_ops) - profile.pointer_fraction) < 0.1

    def test_addresses_fall_in_valid_segments(self):
        workload = SyntheticWorkload(profile_by_name("twolf"), seed=2)
        layout = workload.memory.layout
        for dop in workload.trace(500):
            if dop.address is not None:
                assert layout.heap.contains(dop.address) or \
                    layout.globals_seg.contains(dop.address)

    def test_working_set_introspection(self):
        workload = SyntheticWorkload(profile_by_name("gzip"), seed=1)
        lines = list(workload.working_set_lines())
        assert lines and all(line % 64 == 0 for line in lines)
        locks = list(workload.lock_locations())
        assert len(locks) == workload.live_objects + 1

    def test_calls_balanced_with_returns(self):
        workload = SyntheticWorkload(profile_by_name("perl"), seed=4)
        trace = workload.trace(3000)
        calls = sum(1 for d in trace if d.instruction.opcode is Opcode.CALL)
        rets = sum(1 for d in trace if d.instruction.opcode is Opcode.RET)
        assert calls >= rets


class TestJulietSuite:
    def test_default_case_count_is_291(self):
        assert JULIET_CASE_COUNT == 291
        assert len(JulietSuite().faulty_cases()) == 291

    def test_case_names_are_unique(self):
        names = [case.name for case in JulietSuite().faulty_cases()]
        assert len(set(names)) == len(names)

    def test_every_pattern_represented(self):
        suite = JulietSuite(case_count=40)
        patterns = {case.pattern for case in suite.faulty_cases()}
        assert patterns == set(suite.patterns())

    def test_both_cwes_present(self):
        cwes = {case.cwe for case in JulietSuite(case_count=60).faulty_cases()}
        assert cwes == {"CWE-416", "CWE-562"}

    def test_faulty_cases_detected(self, uaf_config):
        for case in JulietSuite(case_count=20).faulty_cases():
            result = Machine(uaf_config).run(case.program)
            assert result.detected, case.name
            assert result.violation_kind == case.expected_kind, case.name

    def test_benign_twins_run_clean(self, uaf_config):
        for case in JulietSuite(case_count=20).benign_cases():
            result = Machine(uaf_config).run(case.program)
            assert not result.detected, case.name

    def test_faulty_cases_missed_without_watchdog(self, disabled_config):
        missed = 0
        for case in JulietSuite(case_count=10).faulty_cases():
            if not Machine(disabled_config).run(case.program).detected:
                missed += 1
        assert missed == 10


class TestAttackScenarios:
    def test_all_scenarios_listed(self):
        names = {s.name for s in all_attack_scenarios()}
        assert names == {"heap-uaf-hijack", "stack-uaf-hijack", "double-free",
                         "heap-overflow"}
        assert scenario_by_name("double-free").expected_kind == "double-free"
        with pytest.raises(KeyError):
            scenario_by_name("nope")

    def test_heap_uaf_attack_succeeds_without_watchdog(self, disabled_config):
        scenario = scenario_by_name("heap-uaf-hijack")
        result = Machine(disabled_config).run(scenario.program())
        assert not result.detected
        from repro.isa.registers import parse_reg
        assert result.registers.read(parse_reg(scenario.observed_register)) == ATTACKER_VALUE

    def test_uaf_attacks_detected_by_watchdog(self, uaf_config):
        for scenario in all_attack_scenarios():
            if scenario.requires_bounds:
                continue
            result = Machine(uaf_config).run(scenario.program())
            assert result.detected, scenario.name
            assert result.violation_kind == scenario.expected_kind

    def test_overflow_needs_bounds_extension(self, uaf_config, bounds_config):
        scenario = scenario_by_name("heap-overflow")
        assert not Machine(uaf_config).run(scenario.program()).detected
        result = Machine(bounds_config).run(scenario.program())
        assert result.detected and result.violation_kind == "out-of-bounds"
