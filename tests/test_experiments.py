"""Tests for the experiment drivers (reduced scale)."""

import pytest

from repro.experiments import (
    ablations,
    fig5_pointer_identification,
    fig7_runtime_overhead,
    fig8_uop_overhead,
    fig9_lock_cache,
    fig10_memory_overhead,
    fig11_bounds_checking,
    sec92_juliet,
    table1_comparison,
    table2_config,
)
from repro.experiments.common import ExperimentSettings, OverheadSweep

#: A deliberately small sweep so the whole experiment layer is exercised in
#: seconds; the benchmarks/ directory runs the full-scale versions.
QUICK = ExperimentSettings.quick(benchmarks=("gzip", "mcf", "lbm"), instructions=1500)


@pytest.fixture(scope="module")
def sweep():
    return OverheadSweep(QUICK)


class TestTableExperiments:
    def test_table1_matches_paper(self):
        result = table1_comparison.run()
        assert result.summary["mismatches_vs_paper"] == 0
        assert "Watchdog" in table1_comparison.format_table()

    def test_table2_matches_paper(self):
        result = table2_config.run()
        assert result.summary["mismatches_vs_paper"] == 0
        assert "ROB" in table2_config.format_table()


class TestFigureExperiments:
    def test_fig5_conservative_exceeds_isa(self, sweep):
        result = fig5_pointer_identification.run(sweep=sweep)
        assert result.summary["conservative_avg_percent"] > \
            result.summary["isa_assisted_avg_percent"]
        assert set(result.series) == {"conservative", "isa-assisted"}

    def test_fig7_overheads_positive_and_ordered(self, sweep):
        result = fig7_runtime_overhead.run(sweep=sweep, include_ideal_shadow=False)
        conservative = result.summary["conservative_geomean_percent"]
        isa = result.summary["isa-assisted_geomean_percent"]
        assert conservative > 0 and isa > 0
        assert conservative >= isa * 0.9   # conservative should not be cheaper

    def test_fig8_breakdown_sums_to_total(self, sweep):
        result = fig8_uop_overhead.run(sweep=sweep)
        for benchmark in result.series["total"]:
            total = result.series["total"][benchmark]
            parts = sum(result.series[s][benchmark]
                        for s in ("checks", "pointer_loads", "pointer_stores", "other"))
            assert total == pytest.approx(parts, rel=1e-6)
        assert result.summary["checks_avg_percent"] > \
            result.summary["pointer_loads_avg_percent"]

    def test_fig9_lock_cache_helps(self, sweep):
        result = fig9_lock_cache.run(sweep=sweep)
        assert result.summary["without-lock-cache_geomean_percent"] > \
            result.summary["with-lock-cache_geomean_percent"]

    def test_fig10_pages_exceed_words(self, sweep):
        result = fig10_memory_overhead.run(sweep=sweep)
        assert result.summary["pages_geomean_percent"] >= \
            result.summary["words_geomean_percent"] > 0

    def test_fig11_bounds_ordering(self, sweep):
        result = fig11_bounds_checking.run(sweep=sweep)
        assert result.summary["bounds_two_uop_geomean_percent"] > \
            result.summary["watchdog_geomean_percent"]
        assert result.summary["bounds_fused_geomean_percent"] >= \
            result.summary["watchdog_geomean_percent"] * 0.9

    def test_ablations_include_copy_elimination(self, sweep):
        result = ablations.run(sweep=sweep)
        assert "no-copy-elimination_geomean_percent" in result.summary

    def test_sec92_juliet_small_subset(self):
        result = sec92_juliet.run(case_count=30, benign_count=15)
        assert result.summary["detected"] == 30
        assert result.summary["false_positives"] == 0


class TestSweepInfrastructure:
    def test_outcomes_are_cached(self, sweep):
        from repro.core.config import WatchdogConfig
        first = sweep.outcome("gzip", "isa-assisted", WatchdogConfig.isa_assisted_uaf())
        second = sweep.outcome("gzip", "isa-assisted", WatchdogConfig.isa_assisted_uaf())
        assert first is second

    def test_quick_settings(self):
        settings = ExperimentSettings.quick()
        assert len(settings.benchmarks) < 20
