"""Tests for §9.1 sampled simulation on the compiled pipeline.

Covers the sampled-bundle segmentation, the degenerate-schedule
normalization that pins sampled results to the unsampled path, golden
compiled-vs-reference bit-equality under sampling, the engine/cache
round-trip (including the pipeline/sampling cache-collision fixes), the
bundle-memo footprint accounting, and the long-horizon profiles that only
sampling makes tractable.
"""

import dataclasses

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.sim.cache import ResultCache, request_fingerprint
from repro.sim.engine import SweepEngine, _BUNDLES, _bundle_for, BenchmarkJob
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.simulator import Simulator
from repro.sim.spec import ExperimentSettings, ExperimentSpec, RunRequest
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import (
    LONG_HORIZON_INSTRUCTIONS,
    long_profile_names,
    profile_by_name,
)

ISA = WatchdogConfig.isa_assisted_uaf()

#: A schedule that genuinely samples the suite's short synthetic traces.
SMALL = SamplingConfig(fast_forward=2000, warmup=500, sample=1500)


def small_spec(benchmarks=("gzip", "mcf"), instructions=12_000):
    settings = ExperimentSettings(benchmarks=benchmarks,
                                  instructions=instructions, sampling=SMALL)
    return ExperimentSpec.build("sampled", {"wd": ISA}, settings=settings)


class TestSampledBundle:
    def test_segmentation_matches_schedule_windows(self):
        instructions = 12_000
        bundle = TraceBundle.generate("gzip", seed=7, instructions=instructions,
                                      sampling=SMALL)
        schedule = SamplingSchedule(SMALL)
        measure_windows = [w for w in schedule.windows(instructions)
                           if w[2] == SamplingSchedule.MEASURE]
        assert len(bundle.samples) == len(measure_windows)
        assert [len(s.measured) for s in bundle.samples] == \
            [end - start for start, end, _ in measure_windows]
        assert all(len(s.warmup) == SMALL.warmup for s in bundle.samples)
        assert bundle.measured_instructions == \
            schedule.measured_count(instructions)
        # The sampled layout replaces the conventional streams entirely.
        assert bundle.measured == () and bundle.warmup == ()
        assert bundle.warmup_instructions == 0

    def test_windows_are_slices_of_the_continuous_stream(self):
        # One generator spans every window: the warm-up/measured segments
        # must be literal slices of the continuous unsampled stream, even
        # when a window boundary lands inside a multi-op event (allocation
        # or runtime-call sequence) — schedule lengths here are chosen to be
        # misaligned with any event structure.
        from repro.workloads.profiles import profile_by_name
        from repro.workloads.synthetic import SyntheticWorkload

        sampling = SamplingConfig(fast_forward=313, warmup=328, sample=356)
        schedule = SamplingSchedule(sampling)
        for name, seed in (("mcf", 1), ("perl", 7), ("gcc", 2)):
            bundle = TraceBundle.generate(name, seed=seed, instructions=4_000,
                                          sampling=sampling)
            continuous = SyntheticWorkload(profile_by_name(name),
                                           seed=seed).trace(4_000)
            index = 0
            for start, end, phase in schedule.windows(4_000):
                if phase == SamplingSchedule.WARMUP:
                    assert bundle.samples[index].warmup == \
                        tuple(continuous[start:end])
                elif phase == SamplingSchedule.MEASURE:
                    assert bundle.samples[index].measured == \
                        tuple(continuous[start:end])
                    index += 1

    def test_generation_is_deterministic(self):
        first = TraceBundle.generate("mcf", seed=3, instructions=9_000,
                                     sampling=SMALL)
        second = TraceBundle.generate("mcf", seed=3, instructions=9_000,
                                      sampling=SMALL)
        assert first == second

    def test_degenerate_schedule_normalizes_to_unsampled(self):
        plain = TraceBundle.generate("gzip", seed=7, instructions=3_000)
        unsampled = TraceBundle.generate(
            "gzip", seed=7, instructions=3_000,
            sampling=SamplingConfig.unsampled(3_000))
        assert unsampled == plain
        assert unsampled.sampling is None and unsampled.samples == ()

    def test_schedule_measuring_nothing_normalizes_to_unsampled(self):
        # The quick schedule's period exceeds a 3k trace: the whole trace
        # would be fast-forward, so everything is measured instead.
        plain = TraceBundle.generate("gzip", seed=7, instructions=3_000)
        short = TraceBundle.generate("gzip", seed=7, instructions=3_000,
                                     sampling=SamplingConfig.quick())
        assert short == plain


class TestSampledExecution:
    def test_degenerate_schedule_results_exactly_equal_unsampled(self):
        simulator = Simulator()
        for benchmark in ("gzip", "mcf"):
            plain = simulator.run_benchmark(benchmark, ISA,
                                            instructions=3_000, seed=7)
            sampled = simulator.run_benchmark(
                benchmark, ISA, instructions=3_000, seed=7,
                sampling=SamplingConfig.unsampled(3_000))
            assert sampled.timing == plain.timing
            assert sampled.timing.ipc == plain.timing.ipc

    def test_quick_schedule_on_short_profiles_matches_unsampled_exactly(self):
        # Acceptance: sampled IPC on the default-scale profiles stays within
        # 10% of unsampled.  Under the shipped quick schedule a short trace
        # normalizes to the unsampled layout, so the match is exact.
        simulator = Simulator()
        for benchmark in ("gzip", "mcf", "lbm", "gcc"):
            plain = simulator.run_benchmark(benchmark, ISA,
                                            instructions=8_000, seed=7)
            sampled = simulator.run_benchmark(benchmark, ISA,
                                              instructions=8_000, seed=7,
                                              sampling=SamplingConfig.quick())
            assert sampled.timing.ipc == plain.timing.ipc

    def test_genuine_sampling_approximates_unsampled_ipc(self):
        # With real skip windows the measured windows are a subset of the
        # trace; the working-set warm-up keeps the per-sample steady state
        # close to the full run's.
        simulator = Simulator()
        sampling = SamplingConfig(fast_forward=6_000, warmup=3_000,
                                  sample=3_000)
        for benchmark in ("gzip", "mcf"):
            for config in (WatchdogConfig.disabled(), ISA):
                plain = simulator.run_benchmark(benchmark, config,
                                                instructions=48_000, seed=7)
                sampled = simulator.run_benchmark(benchmark, config,
                                                  instructions=48_000, seed=7,
                                                  sampling=sampling)
                assert sampled.timing.ipc == \
                    pytest.approx(plain.timing.ipc, rel=0.15)

    def test_sampled_aggregation_sums_sample_stats(self):
        bundle = TraceBundle.generate("mcf", seed=7, instructions=12_000,
                                      sampling=SMALL)
        simulator = Simulator()
        aggregated = simulator.run_bundle(bundle, ISA)
        per_sample = [
            simulator.run_trace(iter(sample.measured), ISA, name="mcf",
                                warmup_trace=sample.warmup or None,
                                workload=sample.working_set)
            for sample in bundle.samples]
        assert aggregated.timing.cycles == \
            sum(o.timing.cycles for o in per_sample)
        assert aggregated.timing.total_uops == \
            sum(o.timing.total_uops for o in per_sample)
        assert aggregated.injection.injected_uops == \
            sum(o.injection.injected_uops for o in per_sample)
        assert aggregated.pointer_stats.memory_ops == \
            sum(o.pointer_stats.memory_ops for o in per_sample)
        # Pages union (samples may touch overlapping lines).
        assert aggregated.pages.data_word_count <= \
            sum(o.pages.data_word_count for o in per_sample)
        assert aggregated.pages.data_word_count >= \
            max(o.pages.data_word_count for o in per_sample)


class TestGoldenSampledEquivalence:
    #: Five profiles spanning the pointer-density/locality range × two
    #: configurations, as the acceptance criteria require.
    PROFILES = ("gzip", "mcf", "lbm", "gcc", "twolf")
    CONFIGS = (WatchdogConfig.disabled(), WatchdogConfig.isa_assisted_uaf())

    @pytest.mark.parametrize("profile_name", PROFILES)
    def test_compiled_matches_reference_bit_for_bit(self, profile_name):
        bundle = TraceBundle.generate(profile_name, seed=7, instructions=9_000,
                                      sampling=SMALL)
        assert bundle.samples, "schedule must genuinely sample this trace"
        for config in self.CONFIGS:
            compiled = Simulator(pipeline="compiled").run_bundle(bundle, config)
            reference = Simulator(pipeline="reference").run_bundle(bundle, config)
            assert compiled.timing == reference.timing
            assert compiled.injection == reference.injection
            assert compiled.pointer_stats.memory_ops == \
                reference.pointer_stats.memory_ops
            assert compiled.pointer_stats.pointer_ops == \
                reference.pointer_stats.pointer_ops
            assert compiled.pages.data_words == reference.pages.data_words
            assert compiled.pages.shadow_words == reference.pages.shadow_words


class TestEngineRoundTrip:
    def test_sampled_jobs_round_trip_through_pool_and_cache(self, tmp_path):
        spec = small_spec()
        cold = SweepEngine(workers=2, cache=ResultCache(tmp_path))
        try:
            cells = cold.run_spec(spec)
        finally:
            cold.close()
        assert cold.simulated_cells == len(spec)
        assert all(cell.cycles > 0 for cell in cells.values())

        serial = SweepEngine(workers=1)
        assert serial.run_spec(spec) == cells

        warm = SweepEngine(cache=ResultCache(tmp_path))
        assert warm.run_spec(spec) == cells
        assert warm.simulated_cells == 0

    def test_sampling_is_part_of_the_cell_identity(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        plain = RunRequest("gzip", "wd", ISA, instructions=12_000)
        sampled = dataclasses.replace(plain, sampling=SMALL)
        first = engine.cell(plain)
        second = engine.cell(sampled)
        assert engine.simulated_cells == 2
        assert first.cycles != second.cycles

        # A fresh engine over the same cache dir: the sampled request must
        # hit its own entry, never the unsampled one.
        warm = SweepEngine(cache=ResultCache(tmp_path))
        assert warm.cell(sampled) == second
        assert warm.simulated_cells == 0


class TestCacheCollisions:
    REQUEST = RunRequest("gzip", "wd", ISA, instructions=1_200)

    def test_fingerprint_separates_pipelines(self):
        compiled = request_fingerprint(self.REQUEST, pipeline="compiled")
        reference = request_fingerprint(self.REQUEST, pipeline="reference")
        assert compiled != reference

    def test_fingerprint_resolves_pipeline_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        default = request_fingerprint(self.REQUEST)
        assert default == request_fingerprint(self.REQUEST, pipeline="compiled")
        monkeypatch.setenv("REPRO_PIPELINE", "reference")
        assert request_fingerprint(self.REQUEST) == \
            request_fingerprint(self.REQUEST, pipeline="reference")

    def test_fingerprint_separates_sampling_schedules(self):
        plain = request_fingerprint(self.REQUEST)
        sampled = request_fingerprint(
            dataclasses.replace(self.REQUEST, sampling=SMALL))
        other = request_fingerprint(dataclasses.replace(
            self.REQUEST,
            sampling=dataclasses.replace(SMALL, sample=SMALL.sample + 1)))
        assert len({plain, sampled, other}) == 3

    def test_memo_rekeys_when_pipeline_changes_mid_engine(self, monkeypatch):
        # One engine, environment flipped between batches: the memo must not
        # serve the compiled batch's cells to the reference batch.
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        engine = SweepEngine()
        first = engine.cell(self.REQUEST)
        assert engine.simulated_cells == 1
        monkeypatch.setenv("REPRO_PIPELINE", "reference")
        second = engine.cell(self.REQUEST)
        assert engine.simulated_cells == 2
        # The pipelines are bit-identical, so the *results* still agree.
        assert second == first

    def test_cached_compiled_cell_not_served_to_reference_run(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PIPELINE", raising=False)
        compiled_engine = SweepEngine(cache=ResultCache(tmp_path))
        compiled_engine.cell(self.REQUEST)
        assert compiled_engine.simulated_cells == 1

        monkeypatch.setenv("REPRO_PIPELINE", "reference")
        reference_engine = SweepEngine(cache=ResultCache(tmp_path))
        reference_engine.cell(self.REQUEST)
        assert reference_engine.simulated_cells == 1  # miss: other pipeline

        # Same pipeline again: now it hits.
        again = SweepEngine(cache=ResultCache(tmp_path))
        again.cell(self.REQUEST)
        assert again.simulated_cells == 0


class TestBundleMemoFootprint:
    def test_footprint_counts_compiled_caches(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=2_000)
        before = bundle.footprint_ops()
        assert before >= len(bundle.measured) + len(bundle.warmup)
        bundle.compiled_streams(ISA)
        assert bundle.footprint_ops() > before

    def test_whole_bundle_streams_rejected_on_sampled_bundle(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                      sampling=SMALL)
        with pytest.raises(ConfigurationError, match="compiled_sample_streams"):
            bundle.compiled_streams(ISA)

    def test_footprint_counts_sample_segments(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                      sampling=SMALL)
        base = sum(len(s.measured) + len(s.warmup) for s in bundle.samples)
        before = bundle.footprint_ops()
        assert before >= base
        bundle.compiled_sample_streams(0, ISA)
        assert bundle.footprint_ops() > before

    def test_memo_evicts_on_footprint_budget(self, monkeypatch):
        import repro.sim.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_BUNDLES_OP_BUDGET", 5_000)
        _BUNDLES.clear()
        job = BenchmarkJob(benchmark="gzip", seed=7, instructions=2_000,
                           warmup_instructions=None, sampling=None,
                           pipeline="compiled", cells=())
        first = _bundle_for(job)
        # Replay compiles streams, growing the pinned footprint well past
        # the (tiny) budget; the next lookup must evict the older bundle.
        Simulator().run_bundle(first, ISA)
        other = dataclasses.replace(job, benchmark="mcf")
        _bundle_for(other)
        assert len(_BUNDLES) == 1  # gzip evicted despite being "only" 2.5k ops
        _BUNDLES.clear()


class TestSampleCacheRelease:
    """Per-sample compiled caches are dropped once a sample is aggregated."""

    @staticmethod
    def _cache_entries(bundle):
        tokens = bundle.__dict__.get("_cc_tokens") or {}
        streams = bundle.__dict__.get("_cc_streams") or {}
        return dict(tokens), dict(streams)

    def test_release_drops_only_the_given_samples_caches(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                      sampling=SMALL)
        for index in range(len(bundle.samples)):
            bundle.compiled_sample_streams(index, ISA)
        tokens, streams = self._cache_entries(bundle)
        assert set(tokens) == set(range(len(bundle.samples)))
        bundle.release_sample_caches(0)
        tokens, streams = self._cache_entries(bundle)
        assert 0 not in tokens
        assert all(key[2] != 0 for key in streams)
        assert set(tokens) == set(range(1, len(bundle.samples)))

    def test_simulator_release_flag_frees_caches_and_stays_bit_identical(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                      sampling=SMALL)
        kept = Simulator().run_bundle(bundle, ISA)
        tokens, streams = self._cache_entries(bundle)
        assert tokens and streams  # default: caches pinned for replay

        fresh = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                     sampling=SMALL)
        released = Simulator(release_sample_caches=True).run_bundle(fresh, ISA)
        tokens, streams = self._cache_entries(fresh)
        assert not tokens and not streams
        assert released.timing == kept.timing
        assert released.injection == kept.injection

    def test_engine_serial_sampled_job_releases_and_matches_run_bundle(self):
        from repro.sim.engine import execute_job

        _BUNDLES.clear()
        job = BenchmarkJob(benchmark="gzip", seed=7, instructions=12_000,
                           warmup_instructions=None, sampling=SMALL,
                           pipeline="compiled",
                           cells=(("wd", ISA),
                                  ("baseline", WatchdogConfig.disabled())))
        results = execute_job(job)
        bundle = _bundle_for(job)
        tokens, streams = self._cache_entries(bundle)
        assert not tokens and not streams  # all samples released

        # Sample-major execution with release is bit-identical to the plain
        # config-major replay of the same bundle.
        simulator = Simulator()
        for (label, config), cell in zip(job.cells, results):
            expected = simulator.run_bundle(
                TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                     sampling=SMALL), config)
            assert cell.cycles == expected.timing.cycles
            assert cell.total_uops == expected.timing.total_uops
            assert cell.configuration == label
        _BUNDLES.clear()

    def test_released_sample_can_be_replayed_again(self):
        bundle = TraceBundle.generate("gzip", seed=7, instructions=12_000,
                                      sampling=SMALL)
        simulator = Simulator()
        first = simulator.sample_outcome(bundle, 0, ISA)
        bundle.release_sample_caches(0)
        again = simulator.sample_outcome(bundle, 0, ISA)
        assert again.timing == first.timing


class TestSpecValidation:
    def test_settings_reject_non_sampling_config(self):
        with pytest.raises(ConfigurationError, match="SamplingConfig"):
            ExperimentSettings(benchmarks=("gzip",), sampling="quick")

    def test_request_rejects_non_sampling_config(self):
        with pytest.raises(ConfigurationError, match="SamplingConfig"):
            RunRequest("gzip", "wd", ISA, sampling=(480, 10, 10))

    def test_request_rejects_sampling_with_explicit_warmup(self):
        with pytest.raises(ConfigurationError, match="warmup_instructions"):
            RunRequest("gzip", "wd", ISA, warmup_instructions=500,
                       sampling=SMALL)

    def test_bundle_rejects_sampling_with_explicit_warmup(self):
        with pytest.raises(ConfigurationError, match="warmup_instructions"):
            TraceBundle.generate("gzip", seed=7, instructions=3_000,
                                 warmup_instructions=500, sampling=SMALL)

    def test_spec_requests_carry_sampling(self):
        requests = small_spec().requests()
        assert all(r.sampling == SMALL for r in requests)


class TestLongProfiles:
    def test_long_profiles_are_registered_but_not_in_figure_grids(self):
        from repro.workloads.profiles import benchmark_names

        names = long_profile_names()
        assert "mcf-long" in names
        for name in names:
            assert profile_by_name(name).name == name
            assert name not in benchmark_names()

    def test_million_instruction_cell_under_quick_sampling(self):
        # Acceptance: a 1M-instruction long profile completes a fig7-style
        # cell under the quick schedule with ≥5× fewer timed µops than an
        # unsampled run would replay (the quick schedule times 10% of the
        # horizon, so the reduction is 10×).
        instructions = LONG_HORIZON_INSTRUCTIONS
        sampling = SamplingConfig.quick()
        bundle = TraceBundle.generate("mcf-long", seed=7,
                                      instructions=instructions,
                                      sampling=sampling)
        schedule = SamplingSchedule(sampling)
        assert bundle.measured_instructions == \
            schedule.measured_count(instructions)
        assert bundle.measured_instructions * 5 <= instructions

        simulator = Simulator()
        baseline = simulator.run_bundle(bundle, WatchdogConfig.disabled())
        protected = simulator.run_bundle(bundle, ISA)
        # Timed µops scale with measured instructions, not the horizon.
        assert baseline.timing.macro_instructions == \
            bundle.measured_instructions
        assert baseline.timing.macro_instructions * 5 <= instructions
        assert protected.timing.total_uops > baseline.timing.total_uops
        assert protected.cycles > baseline.cycles > 0
