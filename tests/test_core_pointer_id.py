"""Tests for pointer load/store identification (§5)."""

import pytest

from repro.core.pointer_id import (
    ConservativeIdentifier,
    IsaAssistedIdentifier,
    ProfileGuidedIdentifier,
    make_identifier,
)
from repro.isa.instructions import AccessSize, Instruction, Opcode, PointerHint
from repro.isa.registers import fp_reg, int_reg


def word_load(hint=PointerHint.UNKNOWN):
    return Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                       size=AccessSize.WORD64, pointer_hint=hint)


def subword_load():
    return Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                       size=AccessSize.WORD32)


def fp_load():
    return Instruction(Opcode.FLOAD, dest=fp_reg(0), srcs=(int_reg(2),))


class TestConservative:
    def test_word_integer_access_is_pointer_candidate(self):
        assert ConservativeIdentifier().is_pointer_operation(word_load())

    def test_subword_access_is_not(self):
        assert not ConservativeIdentifier().is_pointer_operation(subword_load())

    def test_fp_access_is_not(self):
        assert not ConservativeIdentifier().is_pointer_operation(fp_load())

    def test_annotations_are_ignored(self):
        """Conservative mode models an unannotated binary (§5.1)."""
        identifier = ConservativeIdentifier()
        assert identifier.is_pointer_operation(word_load(PointerHint.NOT_POINTER))

    def test_non_memory_instruction_rejected(self):
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(1), srcs=(int_reg(2), int_reg(3)))
        assert not ConservativeIdentifier().is_pointer_operation(inst)

    def test_stats_track_fraction(self):
        identifier = ConservativeIdentifier()
        identifier.is_pointer_operation(word_load())
        identifier.is_pointer_operation(subword_load())
        assert identifier.stats.memory_ops == 2
        assert identifier.stats.pointer_fraction == pytest.approx(0.5)


class TestIsaAssisted:
    def test_pointer_annotation_respected(self):
        assert IsaAssistedIdentifier().is_pointer_operation(word_load(PointerHint.POINTER))

    def test_not_pointer_annotation_respected(self):
        assert not IsaAssistedIdentifier().is_pointer_operation(
            word_load(PointerHint.NOT_POINTER))

    def test_unannotated_falls_back_to_conservative(self):
        assert IsaAssistedIdentifier().is_pointer_operation(word_load(PointerHint.UNKNOWN))

    def test_pointer_annotation_on_subword_ignored(self):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           size=AccessSize.WORD32, pointer_hint=PointerHint.POINTER)
        assert not IsaAssistedIdentifier().is_pointer_operation(inst)

    def test_isa_assisted_classifies_fewer_than_conservative(self):
        conservative = ConservativeIdentifier()
        assisted = IsaAssistedIdentifier()
        stream = [word_load(PointerHint.POINTER), word_load(PointerHint.NOT_POINTER),
                  word_load(PointerHint.NOT_POINTER), subword_load(), fp_load()]
        for inst in stream:
            conservative.is_pointer_operation(inst)
            assisted.is_pointer_operation(inst)
        assert assisted.stats.pointer_ops < conservative.stats.pointer_ops


class TestProfileGuided:
    def test_unprofiled_operation_is_not_pointer(self):
        assert not ProfileGuidedIdentifier().is_pointer_operation(word_load())

    def test_profiled_pointer_operation_recognised(self):
        identifier = ProfileGuidedIdentifier()
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           label="load_ptr_site")
        identifier.observe(inst, touched_valid_metadata=True)
        assert identifier.is_pointer_operation(inst)
        assert identifier.pointer_static_operations == 1

    def test_profiled_non_pointer_operation_excluded(self):
        identifier = ProfileGuidedIdentifier()
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           label="load_int_site")
        identifier.observe(inst, touched_valid_metadata=False)
        assert not identifier.is_pointer_operation(inst)
        assert identifier.profiled_static_operations == 1

    def test_static_id_uses_label_when_present(self):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),), label="x")
        assert ProfileGuidedIdentifier.static_id(inst) == "x"


class TestFactory:
    def test_make_identifier(self):
        assert isinstance(make_identifier(True), ConservativeIdentifier)
        assert isinstance(make_identifier(False), IsaAssistedIdentifier)
