"""Tests for the check unit (identifier validity + bounds, §3.2/§8)."""

import pytest

from repro.core.checks import CheckOutcome, CheckUnit
from repro.core.identifier import IdentifierTable
from repro.core.metadata import PointerMetadata
from repro.errors import BoundsError, UseAfterFreeError


@pytest.fixture
def table(memory):
    return IdentifierTable(memory)


@pytest.fixture
def checker(memory):
    return CheckUnit(memory)


class TestIdentifierCheck:
    def test_valid_identifier_passes(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier())
        assert checker.identifier_check(metadata, 0x1000) is CheckOutcome.PASS

    def test_invalidated_identifier_fails(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        outcome = checker.identifier_check(PointerMetadata(identifier=ident), 0x1000)
        assert outcome is CheckOutcome.USE_AFTER_FREE

    def test_reallocation_does_not_mask_stale_identifier(self, checker, table):
        stale = table.allocate_identifier()
        table.invalidate(stale)
        fresh = table.allocate_identifier()      # reuses the lock location
        assert fresh.lock == stale.lock
        outcome = checker.identifier_check(PointerMetadata(identifier=stale), 0x1000)
        assert outcome is CheckOutcome.USE_AFTER_FREE

    def test_missing_metadata_passes_by_default(self, checker):
        assert checker.identifier_check(None, 0x1000) is CheckOutcome.PASS

    def test_missing_metadata_flagged_in_strict_mode(self, memory):
        checker = CheckUnit(memory, check_missing_metadata=True)
        assert checker.identifier_check(None, 0x1000) is CheckOutcome.NO_METADATA

    def test_stats_track_failures(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        checker.identifier_check(PointerMetadata(identifier=ident), 0)
        checker.identifier_check(PointerMetadata(identifier=table.allocate_identifier()), 0)
        assert checker.stats.identifier_checks == 2
        assert checker.stats.use_after_free == 1


class TestBoundsCheck:
    def test_in_bounds_passes(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier(),
                                   base=0x100, bound=0x200)
        assert checker.bounds_check(metadata, 0x180, 8) is CheckOutcome.PASS

    def test_out_of_bounds_fails(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier(),
                                   base=0x100, bound=0x200)
        assert checker.bounds_check(metadata, 0x200, 8) is CheckOutcome.OUT_OF_BOUNDS

    def test_metadata_without_bounds_passes(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier())
        assert checker.bounds_check(metadata, 0xFFFF, 8) is CheckOutcome.PASS


class TestCombinedCheckAccess:
    def test_raises_use_after_free(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        with pytest.raises(UseAfterFreeError):
            checker.check_access(PointerMetadata(identifier=ident), 0x1000, 8,
                                 with_bounds=False)

    def test_raises_bounds_error(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier(),
                                   base=0x100, bound=0x108)
        with pytest.raises(BoundsError):
            checker.check_access(metadata, 0x110, 8, with_bounds=True)

    def test_identifier_failure_takes_priority_over_bounds(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        metadata = PointerMetadata(identifier=ident, base=0x100, bound=0x108)
        with pytest.raises(UseAfterFreeError):
            checker.check_access(metadata, 0x110, 8, with_bounds=True)

    def test_no_raise_mode_returns_outcome(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        outcome = checker.check_access(PointerMetadata(identifier=ident), 0x0, 8,
                                       with_bounds=False, raise_on_failure=False)
        assert outcome is CheckOutcome.USE_AFTER_FREE

    def test_bounds_ignored_when_disabled(self, checker, table):
        metadata = PointerMetadata(identifier=table.allocate_identifier(),
                                   base=0x100, bound=0x108)
        outcome = checker.check_access(metadata, 0x110, 8, with_bounds=False)
        assert outcome is CheckOutcome.PASS

    def test_exception_carries_address_and_pc(self, checker, table):
        ident = table.allocate_identifier()
        table.invalidate(ident)
        with pytest.raises(UseAfterFreeError) as excinfo:
            checker.check_access(PointerMetadata(identifier=ident), 0xABC, 8,
                                 with_bounds=False, pc=42)
        assert excinfo.value.address == 0xABC
        assert excinfo.value.pc == 42
