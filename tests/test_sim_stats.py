"""Tests for statistics helpers, sampling, results and trace expansion."""

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError, SimulationError
from repro.isa.instructions import Instruction, Opcode, PointerHint
from repro.isa.microops import UopKind
from repro.isa.registers import int_reg
from repro.memory.hierarchy import PortKind
from repro.sim.results import BenchmarkResult, ExperimentResult
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.stats import (
    OverheadReport,
    arithmetic_mean,
    geometric_mean,
    geometric_mean_overhead,
    percent_overhead,
)
from repro.sim.trace import DynamicOp, TraceExpander


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(SimulationError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_overhead_handles_zero_and_negative(self):
        assert geometric_mean_overhead([0.0, 0.0]) == pytest.approx(0.0)
        assert geometric_mean_overhead([0.21, -0.01]) == pytest.approx(0.0945, abs=1e-3)

    def test_percent_overhead(self):
        assert percent_overhead(100, 115) == pytest.approx(0.15)
        with pytest.raises(SimulationError):
            percent_overhead(0, 10)

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_overhead_report(self):
        report = OverheadReport("isa")
        report.add("gcc", 0.2)
        report.add("lbm", 0.1)
        assert report.geo_mean() == pytest.approx(0.1489, abs=1e-3)
        assert report.as_percent()["gcc"] == pytest.approx(20.0)
        assert "Geo. mean" in report.format_table()


class TestSampling:
    def test_paper_schedule_measures_two_percent(self):
        config = SamplingConfig.paper()
        assert config.sampled_fraction == pytest.approx(0.02)

    def test_phase_classification(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=10, warmup=5, sample=5))
        assert schedule.phase_of(0) == SamplingSchedule.SKIP
        assert schedule.phase_of(12) == SamplingSchedule.WARMUP
        assert schedule.phase_of(17) == SamplingSchedule.MEASURE
        assert schedule.phase_of(20) == SamplingSchedule.SKIP   # next period

    def test_measured_count(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=10, warmup=5, sample=5))
        assert schedule.measured_count(40) == 10

    def test_windows_cover_range(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=4, warmup=2, sample=2))
        windows = schedule.windows(16)
        assert windows[0] == (0, 4, SamplingSchedule.SKIP)
        assert windows[-1][1] == 16

    def test_unsampled_config(self):
        config = SamplingConfig.unsampled(100)
        assert config.sampled_fraction == 1.0
        assert config.degenerate

    def test_quick_schedule(self):
        config = SamplingConfig.quick()
        assert config.sampled_fraction == pytest.approx(0.10)
        assert not config.degenerate

    # -- windows()/measured_count() edge cases ------------------------------------
    def test_windows_empty_trace(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=4, warmup=2, sample=2))
        assert schedule.windows(0) == []
        assert schedule.measured_count(0) == 0

    def test_trace_shorter_than_fast_forward_measures_nothing(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=100, warmup=10,
                                                   sample=10))
        assert schedule.windows(60) == [(0, 60, SamplingSchedule.SKIP)]
        assert schedule.measured_count(60) == 0

    def test_trace_ending_inside_warmup(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=4, warmup=4, sample=2))
        assert schedule.windows(6) == [(0, 4, SamplingSchedule.SKIP),
                                       (4, 6, SamplingSchedule.WARMUP)]
        assert schedule.measured_count(6) == 0

    def test_boundary_aligned_periods(self):
        config = SamplingConfig(fast_forward=4, warmup=2, sample=2)
        schedule = SamplingSchedule(config)
        windows = schedule.windows(3 * config.period)
        assert len(windows) == 9
        assert windows[-1] == (22, 24, SamplingSchedule.MEASURE)
        # Windows tile [0, total) exactly.
        assert windows[0][0] == 0
        assert all(a[1] == b[0] for a, b in zip(windows, windows[1:]))
        assert schedule.measured_count(3 * config.period) == 3 * config.sample

    def test_partial_final_measure_window(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=4, warmup=2, sample=4))
        # Second period's measure window is cut at total=17: [16, 17).
        assert schedule.windows(17)[-1] == (16, 17, SamplingSchedule.MEASURE)
        assert schedule.measured_count(17) == 5

    def test_no_fast_forward_merges_warm_and_measure_per_period(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=0, warmup=2, sample=2))
        assert schedule.windows(8) == [
            (0, 2, SamplingSchedule.WARMUP), (2, 4, SamplingSchedule.MEASURE),
            (4, 6, SamplingSchedule.WARMUP), (6, 8, SamplingSchedule.MEASURE)]

    def test_degenerate_schedule_is_one_measure_window(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=0, warmup=0, sample=3))
        assert schedule.windows(10) == [(0, 10, SamplingSchedule.MEASURE)]
        assert schedule.measured_count(10) == 10

    def test_windows_match_per_index_classification(self):
        schedule = SamplingSchedule(SamplingConfig(fast_forward=3, warmup=2, sample=4))
        for total in (0, 1, 3, 5, 8, 9, 13, 27):
            windows = schedule.windows(total)
            covered = [phase for start, end, phase in windows
                       for _ in range(start, end)]
            assert covered == [schedule.phase_of(i) for i in range(total)]
            assert schedule.measured_count(total) == \
                sum(1 for _ in schedule.measured_indices(total))

    # -- field-specific validation (spec-construction-time errors) -----------------
    def test_negative_fast_forward_names_the_field(self):
        with pytest.raises(ConfigurationError, match="fast_forward must be >= 0"):
            SamplingConfig(fast_forward=-1)

    def test_negative_warmup_names_the_field(self):
        with pytest.raises(ConfigurationError, match="warmup must be >= 0"):
            SamplingConfig(warmup=-5)

    def test_zero_sample_names_the_field(self):
        with pytest.raises(ConfigurationError, match="sample must be > 0"):
            SamplingConfig(sample=0)

    def test_non_integer_length_rejected(self):
        with pytest.raises(ConfigurationError, match="warmup must be an integer"):
            SamplingConfig(warmup=0.5)


class TestResults:
    def test_benchmark_result_overhead(self):
        base = BenchmarkResult("gcc", "baseline", cycles=1000, total_uops=2000,
                               injected_uops=0, memory_accesses=100)
        wd = BenchmarkResult("gcc", "watchdog", cycles=1150, total_uops=2900,
                             injected_uops=900, memory_accesses=100)
        assert wd.overhead_vs(base) == pytest.approx(0.15)
        assert wd.ipc == pytest.approx(2900 / 1150)

    def test_experiment_result_table(self):
        result = ExperimentResult("demo")
        result.add_value("a", "gcc", 1.0)
        result.add_value("b", "gcc", 2.0)
        result.add_value("a", "lbm", 3.0)
        result.add_summary("mean", 2.0)
        table = result.format_table()
        assert "gcc" in table and "lbm" in table and "mean" in table
        assert result.benchmarks() == ["gcc", "lbm"]


class TestTraceExpander:
    def _expand(self, config, dop):
        return TraceExpander(config).expand([dop])

    def test_load_gets_addresses_for_check_and_shadow(self):
        config = WatchdogConfig.isa_assisted_uaf()
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           pointer_hint=PointerHint.POINTER)
        timed = self._expand(config, DynamicOp(inst, address=0x2000_0000,
                                               lock_address=0x6000_0000))
        by_kind = {t.uop.kind: t for t in timed}
        assert by_kind[UopKind.CHECK].address == 0x6000_0000
        assert by_kind[UopKind.CHECK].port is PortKind.LOCK
        assert by_kind[UopKind.LOAD].address == 0x2000_0000
        assert by_kind[UopKind.SHADOW_LOAD].port is PortKind.SHADOW
        assert by_kind[UopKind.SHADOW_LOAD].address is not None

    def test_store_marks_writes(self):
        config = WatchdogConfig.isa_assisted_uaf()
        inst = Instruction(Opcode.STORE, srcs=(int_reg(2), int_reg(3)),
                           pointer_hint=PointerHint.POINTER)
        timed = self._expand(config, DynamicOp(inst, address=0x2000_0000,
                                               lock_address=0x6000_0000))
        writes = {t.uop.kind for t in timed if t.is_write}
        assert UopKind.STORE in writes and UopKind.SHADOW_STORE in writes

    def test_branch_misprediction_flag_propagates(self):
        config = WatchdogConfig.disabled()
        inst = Instruction(Opcode.BRANCH, srcs=(int_reg(1),))
        timed = self._expand(config, DynamicOp(inst, mispredicted=True))
        assert timed[0].mispredicted_branch

    def test_bounds_check_uop_needs_no_memory(self):
        config = WatchdogConfig.full_safety_two_uops()
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           pointer_hint=PointerHint.NOT_POINTER)
        timed = self._expand(config, DynamicOp(inst, address=0x2000_0000,
                                               lock_address=0x6000_0000))
        bounds = [t for t in timed if t.uop.kind is UopKind.BOUNDS_CHECK]
        assert bounds and bounds[0].address is None

    def test_copy_elimination_ablation_adds_uops(self):
        base_config = WatchdogConfig.isa_assisted_uaf()
        ablation = base_config.with_(copy_elimination=False)
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(1), srcs=(int_reg(2),), imm=8)
        with_elim = TraceExpander(base_config).expand([DynamicOp(inst)])
        without = TraceExpander(ablation).expand([DynamicOp(inst)])
        assert len(without) == len(with_elim) + 1

    def test_pages_accounting_hooked(self):
        from repro.memory.pages import PageAccountant
        pages = PageAccountant()
        config = WatchdogConfig.isa_assisted_uaf()
        expander = TraceExpander(config, pages=pages)
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           pointer_hint=PointerHint.POINTER)
        expander.expand([DynamicOp(inst, address=0x2000_0000, lock_address=0x6000_0000)])
        assert pages.data_word_count > 0
        assert pages.shadow_word_count > 0
