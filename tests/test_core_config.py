"""Tests for the Watchdog configuration object."""

import pytest

from repro.core.config import BoundsCheckMode, PointerIdentificationMode, WatchdogConfig


class TestNamedConfigurations:
    def test_disabled(self):
        config = WatchdogConfig.disabled()
        assert not config.enabled

    def test_isa_assisted_default(self):
        config = WatchdogConfig.isa_assisted_uaf()
        assert config.enabled
        assert config.pointer_identification is PointerIdentificationMode.ISA_ASSISTED
        assert not config.bounds_enabled
        assert config.lock_cache_enabled

    def test_conservative(self):
        assert WatchdogConfig.conservative_uaf().conservative

    def test_no_lock_cache(self):
        assert not WatchdogConfig.no_lock_cache().lock_cache_enabled

    def test_full_safety_variants(self):
        fused = WatchdogConfig.full_safety_fused()
        two = WatchdogConfig.full_safety_two_uops()
        assert fused.bounds_mode is BoundsCheckMode.FUSED_SINGLE_UOP
        assert two.bounds_mode is BoundsCheckMode.SEPARATE_UOP
        assert fused.bounds_enabled and two.bounds_enabled

    def test_idealized_shadow(self):
        assert WatchdogConfig.idealized_shadow().ideal_shadow


class TestDerivedProperties:
    def test_metadata_words(self):
        assert WatchdogConfig.isa_assisted_uaf().metadata_words == 2
        assert WatchdogConfig.full_safety_fused().metadata_words == 4

    def test_with_replaces_fields(self):
        config = WatchdogConfig.isa_assisted_uaf().with_(copy_elimination=False)
        assert not config.copy_elimination
        assert config.enabled

    def test_config_is_immutable(self):
        config = WatchdogConfig()
        with pytest.raises(Exception):
            config.enabled = False

    def test_default_halts_on_violation(self):
        assert WatchdogConfig().halt_on_violation
