"""Tests for the address space layout and functional memory."""

import pytest

from repro.errors import ProgramError, UncheckedAccessError
from repro.memory.address_space import (
    AddressSpace,
    AddressSpaceLayout,
    SHADOW_BIT,
    Segment,
)


class TestSegment:
    def test_contains(self):
        seg = Segment("x", 0x1000, 0x2000)
        assert seg.contains(0x1000)
        assert seg.contains(0x1FFF)
        assert not seg.contains(0x2000)

    def test_size(self):
        assert Segment("x", 0x1000, 0x3000).size == 0x2000

    def test_invalid_range_rejected(self):
        with pytest.raises(ProgramError):
            Segment("bad", 0x2000, 0x1000)


class TestLayout:
    def test_segments_are_disjoint(self):
        layout = AddressSpaceLayout()
        segments = layout.segments()
        for i, a in enumerate(segments):
            for b in segments[i + 1:]:
                assert a.limit <= b.base or b.limit <= a.base

    def test_segment_of(self):
        layout = AddressSpaceLayout()
        assert layout.segment_of(layout.heap.base) is layout.heap
        assert layout.segment_of(layout.stack.base + 8) is layout.stack
        assert layout.segment_of(0) is None

    def test_shadow_address_sets_high_bit(self):
        layout = AddressSpaceLayout()
        shadow = layout.shadow_address(layout.heap.base)
        assert shadow & SHADOW_BIT
        assert layout.is_shadow(shadow)
        assert not layout.is_shadow(layout.heap.base)

    def test_shadow_of_shadow_rejected(self):
        layout = AddressSpaceLayout()
        with pytest.raises(ProgramError):
            layout.shadow_address(layout.shadow_address(layout.heap.base))


class TestAddressSpace:
    def test_unwritten_memory_reads_zero(self, memory):
        assert memory.load_word(memory.layout.heap.base) == 0

    def test_word_roundtrip(self, memory):
        addr = memory.layout.heap.base + 0x100
        memory.store_word(addr, 0xDEADBEEF)
        assert memory.load_word(addr) == 0xDEADBEEF

    def test_word_access_aligns_address(self, memory):
        addr = memory.layout.heap.base + 0x100
        memory.store_word(addr, 0x1234)
        assert memory.load_word(addr + 4) == 0x1234

    def test_subword_store_preserves_other_bytes(self, memory):
        addr = memory.layout.heap.base
        memory.store_word(addr, 0xFFFF_FFFF_FFFF_FFFF)
        memory.store(addr, 0, size=4)
        assert memory.load_word(addr) == 0xFFFF_FFFF_0000_0000

    def test_subword_load(self, memory):
        addr = memory.layout.heap.base
        memory.store_word(addr, 0x1122334455667788)
        assert memory.load(addr, size=4) == 0x55667788
        assert memory.load(addr, size=1) == 0x88

    def test_values_masked_to_64_bits(self, memory):
        addr = memory.layout.heap.base
        memory.store_word(addr, 1 << 65)
        assert memory.load_word(addr) == 0

    def test_strict_mode_rejects_unmapped(self):
        memory = AddressSpace(strict=True)
        with pytest.raises(UncheckedAccessError):
            memory.load_word(0x10)

    def test_strict_mode_allows_mapped_and_shadow(self):
        memory = AddressSpace(strict=True)
        memory.store_word(memory.layout.heap.base, 1)
        memory.store_word(memory.layout.shadow_address(memory.layout.heap.base), 1)

    def test_words_in_segment_counts(self, memory):
        heap = memory.layout.heap
        memory.store_word(heap.base, 1)
        memory.store_word(heap.base + 8, 1)
        memory.store_word(memory.layout.stack.base, 1)
        assert memory.words_in(heap) == 2

    def test_access_counters(self, memory):
        memory.store_word(memory.layout.heap.base, 1)
        memory.load_word(memory.layout.heap.base)
        assert memory.writes == 1 and memory.reads == 1
