"""Flat-array stream compilation: packed words, fallbacks, pooled arenas.

The stream compiler emits kernel-ready ``array("q")`` columns directly
(``CompiledStream.words``); the legacy per-µop tuple form is rebuilt on
demand.  These tests pin down the contract:

* the flat words are *bit-identical* to packing the legacy tuples through
  :func:`repro.native._timecore.pack_entry_words`, across every benchmark
  profile and every Table 2 configuration;
* a stream whose fields overflow the packed word format falls back to the
  tuple-only form and the Python scheduler with unchanged results;
* the native state-export arenas are pooled — a second hierarchy reuses the
  first one's (zeroed) arenas and produces bit-identical statistics.
"""

import gc
from array import array

import pytest

from repro.core.config import WatchdogConfig
from repro.memory.hierarchy import MemoryHierarchy
from repro.native import _timecore
from repro.native._timecore import pack_entry_words, unpack_words
from repro.sim.simulator import Simulator
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import benchmark_names

CONFIGURATIONS = {
    "baseline": WatchdogConfig.disabled(),
    "conservative": WatchdogConfig.conservative_uaf(),
    "isa-assisted": WatchdogConfig.isa_assisted_uaf(),
    "no-lock-cache": WatchdogConfig.no_lock_cache(),
    "ideal-shadow": WatchdogConfig.idealized_shadow(),
    "bounds-fused": WatchdogConfig.full_safety_fused(),
    "bounds-2uop": WatchdogConfig.full_safety_two_uops(),
    "no-copy-elim": WatchdogConfig.isa_assisted_uaf().with_(
        copy_elimination=False),
}

INSTRUCTIONS = 600
SEED = 11

KERNEL = _timecore.load()
needs_kernel = pytest.mark.skipif(KERNEL is None,
                                  reason="native timing core unavailable")


class TestFlatEqualsLegacyPacking:
    """compiler-emitted words == legacy tuple packing, every profile/config."""

    @pytest.mark.parametrize("profile_name", benchmark_names())
    def test_words_match_tuple_packing(self, profile_name):
        bundle = TraceBundle.generate(profile_name, seed=SEED,
                                      instructions=INSTRUCTIONS)
        for label, config in CONFIGURATIONS.items():
            stream = bundle.compiled_streams(config).measured
            assert stream.words is not None, \
                f"{profile_name}/{label}: stream is not flat"
            legacy = pack_entry_words(stream.uops)
            assert legacy is not None, \
                f"{profile_name}/{label}: tuples refuse to pack"
            assert stream.words == legacy, \
                f"{profile_name}/{label}: flat words diverge from tuple pack"
            # The tuple view round-trips back to the same words.
            assert unpack_words(stream.words) == stream.uops
            assert len(stream) == len(stream.words)

    def test_columns_are_int64_arrays(self):
        bundle = TraceBundle.generate("mcf", seed=SEED,
                                      instructions=INSTRUCTIONS)
        streams = bundle.compiled_streams(WatchdogConfig.isa_assisted_uaf())
        measured = streams.measured
        for column in (measured.words, measured.lat_template,
                       measured.mem_pos, measured.mem_addr,
                       measured.mem_spec):
            assert isinstance(column, array) and column.typecode == "q"
        assert isinstance(streams.warm.addrs, array)
        assert isinstance(streams.warm.specs, array)

    def test_with_core_preserves_flat_form(self):
        bundle = TraceBundle.generate("gzip", seed=SEED,
                                      instructions=INSTRUCTIONS)
        stream = bundle.compiled_streams(WatchdogConfig.isa_assisted_uaf()) \
            .measured
        assert stream.with_core(stream.core) is stream
        moved = stream.with_core(stream.core + 3)
        assert moved.core == stream.core + 3
        assert moved.words is stream.words
        assert moved.lat_template is stream.lat_template
        assert moved.mem_addr is stream.mem_addr
        assert stream.core != moved.core  # original untouched


class TestPackedWordFormat:
    """The packers agree and reject out-of-range fields identically."""

    IN_RANGE = [
        (511, 63, 62, -1, 62, -1, 62, -1),
        (0, 0, -1, -1, -1, -1, -1, -1),
        (5, 3, 0, 1, 2, 3, 4, 5),
    ]
    OVERFLOW = [
        (0, 64, 0, -1, -1, -1, -1, -1),    # cost too wide
        (512, 0, 0, -1, -1, -1, -1, -1),   # flags too wide
        (0, 0, 63, -1, -1, -1, -1, -1),    # slot too wide
        (0, 0, -2, -1, -1, -1, -1, -1),    # slot below the none marker
        (0, -1, 0, -1, -1, -1, -1, -1),    # negative cost
    ]

    def test_round_trip(self):
        words = pack_entry_words(self.IN_RANGE)
        assert words is not None
        assert unpack_words(words) == self.IN_RANGE

    def test_overflow_refused(self):
        for row in self.OVERFLOW:
            assert pack_entry_words([row]) is None, row

    @needs_kernel
    def test_native_packer_matches_python(self):
        import random
        rng = random.Random(4441)
        rows = [tuple([rng.randrange(512), rng.randrange(64)]
                      + [rng.randrange(-1, 63) for _ in range(6)])
                for _ in range(300)] + self.IN_RANGE
        expected = pack_entry_words(rows)
        native = _timecore._pack_rows_native(KERNEL, rows)
        assert native is not None
        assert native == expected
        for row in self.OVERFLOW:
            assert _timecore._pack_rows_native(KERNEL, [row]) is None, row


class TestOverflowFallback:
    """Packing overflow at compile time degrades to the tuple-only path."""

    def test_tuple_only_stream_matches_flat_result(self, monkeypatch):
        config = WatchdogConfig.isa_assisted_uaf()
        bundle = TraceBundle.generate("mcf", seed=SEED,
                                      instructions=INSTRUCTIONS)
        flat = Simulator(pipeline="compiled").run_bundle(bundle, config)
        reference = Simulator(pipeline="reference").run_bundle(bundle, config)

        # Simulate a stream whose templates exceed the packed-field ranges:
        # every pack attempt reports overflow, so the compiler must keep the
        # tuple form and the scheduler must take the Python path.  A fresh
        # template cache keeps the degraded templates out of other tests
        # (and other tests' flat templates out of this one).
        import repro.sim.compiled as compiled_module
        monkeypatch.setattr(compiled_module, "_TEMPLATE_CACHE", {})
        monkeypatch.setattr("repro.sim.compiled.pack_entry_words",
                            lambda uops: None)
        degraded_bundle = TraceBundle.generate("mcf", seed=SEED,
                                               instructions=INSTRUCTIONS)
        stream = degraded_bundle.compiled_streams(config).measured
        assert stream.words is None
        assert stream.__dict__["_tc_packed"] is False  # never repacked
        assert _timecore.pack_stream(stream) is None
        degraded = Simulator(pipeline="compiled").run_bundle(degraded_bundle,
                                                             config)
        assert degraded.timing == flat.timing == reference.timing

    def test_with_core_keeps_tuple_only_memo(self, monkeypatch):
        import repro.sim.compiled as compiled_module
        monkeypatch.setattr(compiled_module, "_TEMPLATE_CACHE", {})
        monkeypatch.setattr("repro.sim.compiled.pack_entry_words",
                            lambda uops: None)
        bundle = TraceBundle.generate("gzip", seed=SEED, instructions=200)
        stream = bundle.compiled_streams(WatchdogConfig.disabled()).measured
        moved = stream.with_core(2)
        assert moved.words is None
        assert moved.uops == stream.uops
        assert moved.__dict__["_tc_packed"] is False


@needs_kernel
class TestArenaPooling:
    """State-export arenas are recycled across hierarchies via _ARENAS."""

    def _run_batch(self, hierarchy):
        n = 512
        addrs = array("q", [64 * i * 7 for i in range(n)])
        specs = array("q", [(i % 3 == 0) << 2 | 1 << 3 for i in range(n)])
        positions = array("q", range(n))
        lats = array("q", bytes(8 * n))
        hierarchy.access_batch(addrs, specs, positions, lats)
        return lats

    def test_second_hierarchy_reuses_pooled_arenas(self):
        first = MemoryHierarchy()
        lats_first = self._run_batch(first)
        state = first.__dict__["_tc_state"]
        shared = first.shared.__dict__["_tc_shared"]
        first_ids = {id(a) for a in state["_arenas"]}
        first_ids |= {id(a) for a in shared["_arenas"]}
        l3_size = len(shared["l3"])
        l3_id = id(shared["l3"])
        stats_first = first.stats
        del first, state, shared
        gc.collect()

        # The finalizers returned every arena to the pool's free lists.
        assert any(id(a) == l3_id for a in _timecore._ARENAS.get(l3_size, []))

        second = MemoryHierarchy()
        lats_second = self._run_batch(second)
        state = second.__dict__["_tc_state"]
        shared = second.shared.__dict__["_tc_shared"]
        second_ids = {id(a) for a in state["_arenas"]}
        second_ids |= {id(a) for a in shared["_arenas"]}
        # Same config, same shapes: every arena comes back from the pool —
        # no fresh L3 allocate-and-zero on the second cell.
        assert second_ids <= first_ids
        assert id(shared["l3"]) == l3_id
        # The pooled (re-zeroed) arenas behave exactly like fresh ones.
        assert lats_second == lats_first
        assert second.stats == stats_first

    def test_pool_capacity_is_bounded(self):
        size = 1 << 14
        free = _timecore._ARENAS.setdefault(size, [])
        del free[:]
        arenas = [[array("q", bytes(8 * size))]
                  for _ in range(_timecore._POOL_LIMIT + 4)]
        for group in arenas:
            _timecore._release_arenas(group)
        assert len(free) == _timecore._POOL_LIMIT
        del free[:]

    def test_cell_results_identical_across_pool_reuse(self):
        config = WatchdogConfig.isa_assisted_uaf()
        bundle = TraceBundle.generate("equake", seed=SEED, instructions=400)
        simulator = Simulator(pipeline="compiled")
        first = simulator.run_bundle(bundle, config)
        gc.collect()  # retire the first cell's hierarchy into the pool
        second = simulator.run_bundle(bundle, config)
        assert first.timing == second.timing
