"""Resilience-layer tests: fault plans, retries, deadlines, quarantine,
degraded kernels, cache corruption, concurrent writers, and journal resume.

Every recovery path in the sweep engine is exercised *deterministically*
through :mod:`repro.sim.faults`: a :class:`FaultPlan` names the exact
(subject, attempt) points where workers crash, cells hang, cache entries
corrupt, or kernel self-tests fail, and the tests assert the engine's
contract — every healthy cell completes bit-identically to a fault-free
run, every injected failure surfaces as a structured record, and nothing
else does.
"""

import json
import math
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentSettings,
    OverheadSweep,
    kernel_degradation_events,
)
from repro.native import build
from repro.sim.cache import ResultCache, code_fingerprint
from repro.sim.engine import SweepEngine
from repro.sim.faults import (
    DEFAULT_SLOW_SECONDS,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    apply_execution_faults,
)
from repro.sim.journal import RunJournal
from repro.sim.results import (
    CellFailure,
    CellResult,
    DegradationEvent,
    SuiteReport,
)
from repro.sim.spec import ExperimentSpec, ResiliencePolicy

#: Same scale as test_sweep_engine: two benchmarks, short traces, so every
#: recovery path (including real process pools) runs in a few seconds.
QUICK = ExperimentSettings.quick(benchmarks=("gzip", "mcf"), instructions=1200)
ISA = "isa-assisted"


def quick_spec() -> ExperimentSpec:
    return ExperimentSpec.build("quick", {
        ISA: WatchdogConfig.isa_assisted_uaf(),
        "conservative": WatchdogConfig.conservative_uaf(),
    }, settings=QUICK)


#: Cells per benchmark in the quick grid (baseline + the two configs).
LABELS_PER_BENCHMARK = 3

#: Policies used throughout: never give up / give up immediately.
RETRYING = ResiliencePolicy(retries=2)
NO_RETRY = ResiliencePolicy(retries=0)


@pytest.fixture(scope="module")
def reference_cells():
    """The fault-free serial resolution every recovery test compares against."""
    return SweepEngine().run_spec(quick_spec())


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan.parse(None).empty
        assert FaultPlan.parse("").empty
        assert FaultPlan.parse("   ").empty
        assert not FaultPlan.parse("crash:gzip").empty

    def test_parse_round_trips_through_spec_string(self):
        plan = FaultPlan.parse(
            "crash:gzip:0, slow:mcf:*:2.5; corrupt:gzip/baseline "
            "selftest:timecore")
        assert FaultPlan.parse(plan.spec_string()) == plan
        assert plan.specs == (
            FaultSpec("crash", "gzip", attempt=0),
            FaultSpec("slow", "mcf", attempt=None, seconds=2.5),
            FaultSpec("corrupt", "gzip/baseline"),
            FaultSpec("selftest", "timecore"),
        )

    def test_default_attempt_is_first_try_only(self):
        plan = FaultPlan.parse("crash:gzip")
        assert plan.crashes("gzip", 0)
        assert not plan.crashes("gzip", 1)
        assert not plan.crashes("mcf", 0)

    def test_star_attempt_matches_every_attempt(self):
        plan = FaultPlan.parse("crash:gzip:*")
        assert plan.crashes("gzip", 0) and plan.crashes("gzip", 7)

    def test_slow_seconds_and_default(self):
        assert FaultPlan.parse("slow:mcf:0:2.5").slow_seconds("mcf", 0) == 2.5
        assert FaultPlan.parse("slow:mcf").slow_seconds("mcf", 0) == \
            DEFAULT_SLOW_SECONDS
        assert FaultPlan.parse("slow:mcf").slow_seconds("gzip", 0) is None

    def test_corrupt_matches_benchmark_or_cell(self):
        by_cell = FaultPlan.parse("corrupt:gzip/baseline")
        assert by_cell.corrupts_store("gzip", "baseline")
        assert not by_cell.corrupts_store("gzip", ISA)
        by_benchmark = FaultPlan.parse("corrupt:gzip")
        assert by_benchmark.corrupts_store("gzip", "baseline")
        assert by_benchmark.corrupts_store("gzip", ISA)

    def test_selftest_matches_kernel(self):
        plan = FaultPlan.parse("selftest:timecore")
        assert plan.kernel_selftest_fails("timecore")
        assert not plan.kernel_selftest_fails("ffcore")

    @pytest.mark.parametrize("text", (
        "explode:gzip",          # unknown kind
        "crash",                 # no subject
        "crash::0",              # empty subject
        "crash:gzip:minus",      # non-integer attempt
        "crash:gzip:-1",         # negative attempt
        "crash:gzip:0:5",        # duration on a non-slow fault
        "slow:mcf:0:fast",       # non-numeric duration
        "slow:mcf:0:0",          # non-positive duration
    ))
    def test_malformed_tokens_are_configuration_errors(self, text):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert FaultPlan.from_env().empty
        monkeypatch.setenv("REPRO_FAULTS", "crash:gzip:1")
        assert FaultPlan.from_env().crashes("gzip", 1)

    def test_in_process_crash_raises(self):
        plan = FaultPlan.parse("crash:gzip:0")
        with pytest.raises(InjectedWorkerCrash):
            apply_execution_faults(plan, "gzip", 0)
        apply_execution_faults(plan, "gzip", 1)  # non-matching: no-op
        apply_execution_faults(plan, "mcf", 0)


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(deadline_seconds=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(backoff_seconds=-0.1)

    def test_backoff_schedule_is_exponential(self):
        policy = ResiliencePolicy(backoff_seconds=0.1)
        assert policy.backoff_before(0) == 0.0
        assert policy.backoff_before(1) == pytest.approx(0.1)
        assert policy.backoff_before(2) == pytest.approx(0.2)
        assert ResiliencePolicy().backoff_before(3) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_DEADLINE", "2.5")
        monkeypatch.setenv("REPRO_BACKOFF", "0.25")
        monkeypatch.setenv("REPRO_DEGRADE_NATIVE", "0")
        policy = ResiliencePolicy.from_env()
        assert policy.retries == 5
        assert policy.deadline_seconds == 2.5
        assert policy.backoff_seconds == 0.25
        assert policy.degrade_native is False

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        with pytest.raises(ConfigurationError):
            ResiliencePolicy.from_env()


class TestSerialCrashRecovery:
    def test_crash_is_retried_bit_identically(self, reference_cells):
        engine = SweepEngine(faults=FaultPlan.parse("crash:gzip:0"),
                             policy=RETRYING)
        assert engine.run_spec(quick_spec()) == reference_cells
        assert not engine.cell_failures
        kinds = [event.kind for event in engine.degradations]
        assert "worker-crash" in kinds
        # The retry ran with the native kernels disabled — golden-equal, so
        # still bit-identical — and said so.
        assert "native-disabled-retry" in kinds

    def test_degrade_native_can_be_disabled(self, reference_cells):
        engine = SweepEngine(
            faults=FaultPlan.parse("crash:gzip:0"),
            policy=ResiliencePolicy(retries=2, degrade_native=False))
        assert engine.run_spec(quick_spec()) == reference_cells
        assert all(event.kind != "native-disabled-retry"
                   for event in engine.degradations)


class TestQuarantine:
    def test_exhausted_retries_quarantine_only_that_benchmark(
            self, reference_cells):
        engine = SweepEngine(faults=FaultPlan.parse("crash:gzip:*"),
                             policy=ResiliencePolicy(retries=1))
        cells = engine.run_spec(quick_spec())
        # Every gzip cell failed (after 2 attempts each)...
        assert len(engine.cell_failures) == LABELS_PER_BENCHMARK
        assert all(f.benchmark == "gzip" and f.reason == "worker-crash"
                   and f.attempts == 2 for f in engine.cell_failures)
        for (benchmark, label), cell in cells.items():
            if benchmark == "gzip":
                assert cell.failed and cell.cycles == 0
            else:
                # ...while every mcf cell is bit-identical to fault-free.
                assert cell == reference_cells[(benchmark, label)]

    def test_failed_placeholders_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(faults=FaultPlan.parse("crash:gzip:*"),
                             policy=NO_RETRY, cache=cache)
        engine.run_spec(quick_spec())
        assert engine.cell_failures
        # Only mcf's real cells were persisted; a healed rerun must
        # re-simulate gzip, not load an all-zero placeholder.
        assert len(cache) == LABELS_PER_BENCHMARK
        healed = SweepEngine(cache=ResultCache(tmp_path))
        healed.run_spec(quick_spec())
        assert healed.simulated_cells == LABELS_PER_BENCHMARK
        assert not healed.cell_failures

    def test_failed_cells_poison_overheads_as_nan(self):
        engine = SweepEngine(faults=FaultPlan.parse("crash:gzip:*"),
                             policy=NO_RETRY)
        sweep = OverheadSweep(QUICK, engine=engine)
        config = WatchdogConfig.isa_assisted_uaf()
        sweep.run_configs({ISA: config})
        assert math.isnan(sweep.overhead("gzip", ISA, config))
        # The geomean over a poisoned grid is NaN (never a fabricated
        # number), which can only read as DEVIATION in a metric check.
        assert math.isnan(sweep.geo_mean_overhead(ISA, config))
        assert sweep.overhead("mcf", ISA, config) > 0


class TestPooledCrashRecovery:
    """Satellite: BrokenProcessPool recovery, asserted bit-identical."""

    def test_worker_killed_mid_suite_recovers_bit_identically(
            self, reference_cells):
        engine = SweepEngine(workers=2,
                             faults=FaultPlan.parse("crash:gzip:0"),
                             policy=RETRYING)
        try:
            cells = engine.run_spec(quick_spec())
        finally:
            engine.close()
        # The injected os._exit broke the pool; the engine rebuilt it and
        # retried — every cell identical to the fault-free serial run.
        assert cells == reference_cells
        assert not engine.cell_failures
        assert engine.pool_rebuilds >= 1
        assert any(event.kind == "worker-crash"
                   for event in engine.degradations)

    def test_pooled_quarantine_completes_other_cells(self, reference_cells):
        engine = SweepEngine(workers=2,
                             faults=FaultPlan.parse("crash:gzip:*"),
                             policy=NO_RETRY)
        try:
            cells = engine.run_spec(quick_spec())
        finally:
            engine.close()
        assert {f.benchmark for f in engine.cell_failures} == {"gzip"}
        for (benchmark, label), cell in cells.items():
            if benchmark != "gzip":
                assert cell == reference_cells[(benchmark, label)]


class TestDeadlines:
    def test_hung_cell_times_out_and_is_quarantined(self, reference_cells):
        engine = SweepEngine(
            workers=2, faults=FaultPlan.parse("slow:gzip:*:30"),
            policy=ResiliencePolicy(retries=0, deadline_seconds=1.0))
        try:
            cells = engine.run_spec(quick_spec())
        finally:
            engine.close()
        assert len(engine.cell_failures) == LABELS_PER_BENCHMARK
        assert all(f.reason == "cell-timeout" for f in engine.cell_failures)
        assert engine.pool_rebuilds >= 1
        for (benchmark, label), cell in cells.items():
            if benchmark != "gzip":
                assert cell == reference_cells[(benchmark, label)]

    def test_timed_out_cell_recovers_on_retry(self, reference_cells):
        engine = SweepEngine(
            workers=2, faults=FaultPlan.parse("slow:gzip:0:30"),
            policy=ResiliencePolicy(retries=1, deadline_seconds=1.0))
        try:
            cells = engine.run_spec(quick_spec())
        finally:
            engine.close()
        assert cells == reference_cells
        assert not engine.cell_failures
        assert any(event.kind == "cell-timeout"
                   for event in engine.degradations)


class TestCacheQuarantine:
    def test_injected_store_corruption_quarantines_and_heals(
            self, tmp_path, reference_cells):
        plan = FaultPlan.parse("corrupt:gzip/baseline")
        cold = SweepEngine(cache=ResultCache(tmp_path, faults=plan))
        cold_cells = cold.run_spec(quick_spec())
        assert cold_cells == reference_cells  # corruption is on-disk only

        warm = SweepEngine(cache=ResultCache(tmp_path))
        warm_cells = warm.run_spec(quick_spec())
        # Exactly the corrupted entry re-simulated; the broken file was
        # renamed aside instead of staying a forever-miss.
        assert warm.simulated_cells == 1
        assert warm_cells == reference_cells
        corpses = list(tmp_path.glob("*.corrupt"))
        assert len(corpses) == 1
        assert any(event.kind == "cache-corrupt"
                   for event in warm.degradations)

        # Third run: the regenerated entry serves; the corpse is inert.
        third = SweepEngine(cache=ResultCache(tmp_path))
        third.run_spec(quick_spec())
        assert third.simulated_cells == 0
        assert not third.degradations

    def test_hand_corrupted_entry_is_quarantined_on_load(self, tmp_path):
        from repro.sim.spec import RunRequest

        cache = ResultCache(tmp_path)
        request = RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                             instructions=1200, seed=7)
        key = cache.key(request)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None
        assert cache.corruptions == 1
        assert (tmp_path / f"{key}.corrupt").exists()
        assert not (tmp_path / f"{key}.json").exists()
        events = cache.drain_corruption_events()
        assert len(events) == 1 and events[0].kind == "cache-corrupt"
        assert cache.drain_corruption_events() == []

    def test_missing_entry_is_a_plain_miss_not_a_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.corruptions == 0
        assert cache.drain_corruption_events() == []


def _hammer_store(payload):
    """Worker for the concurrent-writer stress test (module-level: picklable)."""
    root, key, writes, salt = payload
    cache = ResultCache(root)
    cell = CellResult(benchmark="gzip", configuration="baseline",
                      cycles=4242, total_uops=9999, macro_instructions=salt)
    for _ in range(writes):
        cache.store(key, cell)
    return cache.stores


class TestConcurrentWriters:
    """Satellite: overlapping writers racing the same key stay atomic."""

    def test_overlapping_writers_never_tear_or_collide(self, tmp_path):
        key = "f" * 64
        workers = 4
        writes = 25
        payloads = [(str(tmp_path), key, writes, salt)
                    for salt in range(workers)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            stores = list(pool.map(_hammer_store, payloads))
        assert stores == [writes] * workers
        # Whoever won the last replace, the entry is whole and parseable...
        cell = ResultCache(tmp_path).load(key)
        assert cell is not None
        assert cell.cycles == 4242 and cell.macro_instructions in range(workers)
        # ...and no temp files leaked (collision-free names + cleanup).
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_same_process_temp_names_are_unique(self, tmp_path):
        # The pid alone cannot distinguish two stores from one process; the
        # serial counter must. Two stores of the same key back to back
        # exercise it (a collision would surface as a clobbered rename).
        cache = ResultCache(tmp_path)
        cell = CellResult(benchmark="gzip", configuration="baseline", cycles=1)
        cache.store("a" * 64, cell)
        cache.store("a" * 64, cell)
        assert cache.stores == 2
        assert ResultCache(tmp_path).load("a" * 64) == cell


class TestKernelFaults:
    def test_selftest_fault_refuses_kernel_with_reason(self, monkeypatch):
        from repro.workloads import _ffcore

        monkeypatch.setenv("REPRO_FAULTS", "selftest:ffcore")
        build.forget("ffcore")
        build._WARNED.discard("ffcore")
        try:
            with pytest.warns(RuntimeWarning, match="ffcore"):
                assert _ffcore.load() is None
            status = _ffcore.status()
            assert status is not None and status.unexpected
            assert "fault-injected" in status.reason
        finally:
            build.forget("ffcore")

    def test_kill_switch_is_disabled_not_unexpected(self, monkeypatch):
        from repro.workloads import _ffcore

        monkeypatch.setenv("REPRO_FFCORE", "0")
        build.forget("ffcore")
        try:
            assert _ffcore.load() is None
            status = _ffcore.status()
            assert status.disabled and not status.unexpected
            assert "ffcore" not in build.unexpected_failures()
        finally:
            build.forget("ffcore")

    def test_unexpected_failure_surfaces_as_degradation_event(
            self, monkeypatch):
        from repro.native import _timecore

        monkeypatch.setenv("REPRO_FAULTS", "selftest:timecore")
        build.forget("timecore")
        build._WARNED.add("timecore")  # already-warned: keep the test quiet
        try:
            assert _timecore.load() is None
            events = kernel_degradation_events()
            assert any(event.kind == "kernel-unavailable"
                       and event.subject == "timecore"
                       for event in events)
        finally:
            build.forget("timecore")


class TestJournal:
    def test_records_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cell = CellResult(benchmark="gzip", configuration="baseline",
                          cycles=77, total_uops=123)
        with RunJournal(path) as journal:
            journal.record_done("k1", cell)
            journal.record_failed("k2", "mcf", ISA, "worker-crash")
        resumed = RunJournal(path, resume=True)
        assert resumed.completed_cell("k1") == cell
        assert resumed.completed_cell("k2") is None
        assert resumed.failed_cells() == {"k2": "worker-crash"}
        resumed.close()

    def test_last_status_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cell = CellResult(benchmark="mcf", configuration=ISA, cycles=5)
        with RunJournal(path) as journal:
            journal.record_failed("k", "mcf", ISA, "cell-timeout")
            journal.record_done("k", cell)
        resumed = RunJournal(path, resume=True)
        assert resumed.completed_cell("k") == cell
        assert resumed.failed_cells() == {}
        resumed.close()

    def test_truncated_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        cell = CellResult(benchmark="gzip", configuration="baseline", cycles=9)
        with RunJournal(path) as journal:
            journal.record_done("k1", cell)
        # Simulate an interrupt arriving mid-write of the next record.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"status": "done", "key": "k2", "cel')
        resumed = RunJournal(path, resume=True)
        assert not resumed.stale
        assert resumed.completed_cell("k1") == cell
        assert resumed.completed_cell("k2") is None
        resumed.close()

    def test_stale_code_fingerprint_discards_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"journal": 1, "code": "0" * 64}) + "\n"
                        + json.dumps({"status": "done", "key": "k",
                                      "benchmark": "gzip",
                                      "label": "baseline",
                                      "cell": CellResult(
                                          benchmark="gzip",
                                          configuration="baseline").to_dict()})
                        + "\n")
        journal = RunJournal(path, resume=True)
        assert journal.stale
        assert journal.completed_cell("k") is None
        journal.close()
        # The stale file was rewritten with a fresh, valid header.
        fresh = RunJournal(path, resume=True)
        assert not fresh.stale
        fresh.close()

    def test_fresh_run_truncates_previous_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with RunJournal(path) as journal:
            journal.record_done("k", CellResult(benchmark="gzip",
                                                configuration="baseline"))
        with RunJournal(path, resume=False):
            pass
        resumed = RunJournal(path, resume=True)
        assert resumed.completed_cell("k") is None
        resumed.close()

    def test_header_pins_current_code(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        RunJournal(path).close()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["code"] == code_fingerprint()


class TestJournalResume:
    def test_resume_re_simulates_only_failed_cells(self, tmp_path,
                                                   reference_cells):
        path = tmp_path / "journal.jsonl"
        crashed = SweepEngine(journal=RunJournal(path),
                              faults=FaultPlan.parse("crash:gzip:*"),
                              policy=NO_RETRY)
        first = crashed.run_spec(quick_spec())
        crashed.close()
        assert len(crashed.cell_failures) == LABELS_PER_BENCHMARK
        assert first[("mcf", ISA)] == reference_cells[("mcf", ISA)]

        resumed = SweepEngine(journal=RunJournal(path, resume=True))
        second = resumed.run_spec(quick_spec())
        resumed.close()
        # mcf came straight from the journal; only gzip re-simulated.
        assert resumed.journal_cells == LABELS_PER_BENCHMARK
        assert resumed.simulated_cells == LABELS_PER_BENCHMARK
        assert not resumed.cell_failures
        assert second == reference_cells

    def test_journal_serves_without_a_cache(self, tmp_path, reference_cells):
        path = tmp_path / "journal.jsonl"
        full = SweepEngine(journal=RunJournal(path))
        full.run_spec(quick_spec())
        full.close()
        resumed = SweepEngine(journal=RunJournal(path, resume=True))
        cells = resumed.run_spec(quick_spec())
        resumed.close()
        assert resumed.simulated_cells == 0
        assert resumed.journal_cells == len(quick_spec())
        assert cells == reference_cells


class TestCombinedPlan:
    """The acceptance shape: several fault kinds in one run, one report."""

    def test_combined_faults_one_run(self, tmp_path, reference_cells):
        plan = FaultPlan.parse("crash:gzip:0,corrupt:mcf/baseline")
        engine = SweepEngine(workers=2, faults=plan, policy=RETRYING,
                             cache=ResultCache(tmp_path, faults=plan))
        try:
            cells = engine.run_spec(quick_spec())
        finally:
            engine.close()
        # Every cell completed bit-identically despite the mid-run crash...
        assert cells == reference_cells
        assert not engine.cell_failures
        assert any(event.kind == "worker-crash"
                   for event in engine.degradations)

        # ...and the injected store corruption surfaces on the next run as
        # exactly one quarantined entry, then heals.
        warm = SweepEngine(cache=ResultCache(tmp_path))
        warm_cells = warm.run_spec(quick_spec())
        assert warm.simulated_cells == 1
        assert warm_cells == reference_cells
        assert len(list(tmp_path.glob("*.corrupt"))) == 1


class TestReportPlumbing:
    def test_degradation_event_round_trip(self):
        event = DegradationEvent(kind="worker-crash", subject="gzip",
                                 attempt=1, detail="worker process died")
        assert DegradationEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))) == event
        assert "gzip" in event.describe()

    def test_cell_failure_round_trip(self):
        failure = CellFailure(benchmark="gzip", label=ISA, attempts=3,
                              reason="cell-timeout", detail="deadline 5s")
        assert CellFailure.from_dict(
            json.loads(json.dumps(failure.to_dict()))) == failure
        assert "3 attempts" in failure.describe()

    def test_suite_report_carries_resilience_records(self):
        report = SuiteReport(
            degradations=[DegradationEvent(kind="kernel-unavailable",
                                           subject="timecore",
                                           detail="no compiler")],
            cell_failures=[CellFailure(benchmark="gzip", label=ISA,
                                       attempts=2, reason="worker-crash")])
        assert not report.ok  # cell failures fail the suite...
        data = json.loads(json.dumps(report.to_dict()))
        restored = SuiteReport.from_dict(data)
        assert restored.degradations == report.degradations
        assert restored.cell_failures == report.cell_failures
        assert not restored.ok

        degraded_only = SuiteReport(
            degradations=[DegradationEvent(kind="cache-corrupt",
                                           subject="x.json")])
        assert degraded_only.ok  # ...degradations alone are advisory

    def test_failed_placeholder_round_trip(self):
        placeholder = CellResult.failed_cell("gzip", ISA)
        assert placeholder.failed
        restored = CellResult.from_dict(
            json.loads(json.dumps(placeholder.to_dict())))
        assert restored == placeholder
        # Pre-v3 entries lack the field; it must default to healthy.
        legacy = {f: v for f, v in placeholder.to_dict().items()
                  if f != "failed"}
        assert not CellResult.from_dict(legacy).failed
