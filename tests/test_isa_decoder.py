"""Tests for the macro-to-µop decoder (baseline µops only)."""

import pytest

from repro.isa.decoder import Decoder
from repro.isa.instructions import AccessSize, Instruction, Opcode
from repro.isa.microops import UopKind
from repro.isa.registers import STACK_POINTER, int_reg


@pytest.fixture
def decoder():
    return Decoder()


class TestSimpleDecoding:
    def test_alu_decodes_to_single_uop(self, decoder):
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(1),
                           srcs=(int_reg(2), int_reg(3)))
        uops = decoder.decode(inst)
        assert len(uops) == 1
        assert uops[0].kind is UopKind.ALU

    def test_mul_uses_mul_unit(self, decoder):
        inst = Instruction(Opcode.MUL_RR, dest=int_reg(1),
                           srcs=(int_reg(2), int_reg(3)))
        assert decoder.decode(inst)[0].kind is UopKind.MUL

    def test_div_uses_div_unit(self, decoder):
        inst = Instruction(Opcode.DIV_RR, dest=int_reg(1),
                           srcs=(int_reg(2), int_reg(3)))
        assert decoder.decode(inst)[0].kind is UopKind.DIV

    def test_fp_add_uses_fp_unit(self, decoder):
        from repro.isa.registers import fp_reg
        inst = Instruction(Opcode.FADD, dest=fp_reg(1), srcs=(fp_reg(2), fp_reg(3)))
        assert decoder.decode(inst)[0].kind is UopKind.FP

    def test_load_decodes_to_load_uop_with_size(self, decoder):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           imm=16, size=AccessSize.WORD32)
        uops = decoder.decode(inst)
        assert len(uops) == 1
        assert uops[0].kind is UopKind.LOAD
        assert uops[0].imm == 16
        assert uops[0].size is AccessSize.WORD32

    def test_store_decodes_to_store_uop(self, decoder):
        inst = Instruction(Opcode.STORE, srcs=(int_reg(2), int_reg(3)))
        uops = decoder.decode(inst)
        assert uops[0].kind is UopKind.STORE
        assert uops[0].srcs == (int_reg(2), int_reg(3))

    def test_nop_and_halt(self, decoder):
        assert decoder.decode(Instruction(Opcode.NOP))[0].kind is UopKind.NOP
        assert decoder.decode(Instruction(Opcode.HALT))[0].kind is UopKind.NOP


class TestCallReturnDecoding:
    def test_call_produces_stack_adjust_and_branch(self, decoder):
        uops = decoder.decode(Instruction(Opcode.CALL))
        kinds = [u.kind for u in uops]
        assert UopKind.BRANCH in kinds
        assert any(u.dest == STACK_POINTER for u in uops)

    def test_ret_produces_stack_adjust_and_branch(self, decoder):
        uops = decoder.decode(Instruction(Opcode.RET))
        assert [u.kind for u in uops].count(UopKind.BRANCH) == 1


class TestRuntimeInterfaceDecoding:
    def test_setident_decodes_to_setident_uop(self, decoder):
        inst = Instruction(Opcode.SETIDENT, srcs=(int_reg(1), int_reg(2)))
        uops = decoder.decode(inst)
        assert uops[0].kind is UopKind.SETIDENT
        assert uops[0].meta_dest == int_reg(1)

    def test_getident_decodes_to_getident_uop(self, decoder):
        inst = Instruction(Opcode.GETIDENT, dest=int_reg(3), srcs=(int_reg(1),))
        assert decoder.decode(inst)[0].kind is UopKind.GETIDENT

    def test_decode_block_concatenates(self, decoder):
        insts = [Instruction(Opcode.NOP), Instruction(Opcode.CALL)]
        assert len(decoder.decode_block(insts)) == 3

    def test_baseline_uops_are_not_marked_injected(self, decoder):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        assert not decoder.decode(inst)[0].is_injected
