"""Tests for Watchdog µop injection (§3, Figures 2 and 3)."""

import pytest

from repro.core.config import WatchdogConfig
from repro.core.uop_injection import UopInjector
from repro.isa.instructions import AccessSize, Instruction, Opcode, PointerHint
from repro.isa.microops import UopKind
from repro.isa.registers import fp_reg, int_reg


def injector_for(config=None):
    return UopInjector(config or WatchdogConfig.isa_assisted_uaf())


def pointer_load():
    return Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                       pointer_hint=PointerHint.POINTER)


def plain_load():
    return Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                       pointer_hint=PointerHint.NOT_POINTER)


def pointer_store():
    return Instruction(Opcode.STORE, srcs=(int_reg(2), int_reg(3)),
                       pointer_hint=PointerHint.POINTER)


class TestLoadStoreInjection:
    def test_every_load_gets_a_check(self):
        uops = injector_for().expand(plain_load())
        assert [u.kind for u in uops][0] is UopKind.CHECK

    def test_every_store_gets_a_check(self):
        inst = Instruction(Opcode.STORE, srcs=(int_reg(2), int_reg(3)),
                           pointer_hint=PointerHint.NOT_POINTER)
        kinds = [u.kind for u in injector_for().expand(inst)]
        assert UopKind.CHECK in kinds

    def test_fp_load_still_checked_but_no_shadow(self):
        inst = Instruction(Opcode.FLOAD, dest=fp_reg(0), srcs=(int_reg(2),))
        kinds = [u.kind for u in injector_for().expand(inst)]
        assert UopKind.CHECK in kinds
        assert UopKind.SHADOW_LOAD not in kinds

    def test_pointer_load_gets_shadow_load(self):
        """Figure 2a: check + value load + shadow metadata load."""
        kinds = [u.kind for u in injector_for().expand(pointer_load())]
        assert kinds == [UopKind.CHECK, UopKind.LOAD, UopKind.SHADOW_LOAD]

    def test_non_pointer_load_has_no_shadow_load(self):
        kinds = [u.kind for u in injector_for().expand(plain_load())]
        assert UopKind.SHADOW_LOAD not in kinds

    def test_pointer_store_gets_shadow_store(self):
        """Figure 2b: check + shadow metadata store + value store."""
        kinds = [u.kind for u in injector_for().expand(pointer_store())]
        assert UopKind.CHECK in kinds and UopKind.SHADOW_STORE in kinds
        assert kinds.index(UopKind.SHADOW_STORE) < kinds.index(UopKind.STORE)

    def test_conservative_mode_shadows_unannotated_word_loads(self):
        injector = injector_for(WatchdogConfig.conservative_uaf())
        kinds = [u.kind for u in injector.expand(plain_load())]
        assert UopKind.SHADOW_LOAD in kinds

    def test_injected_uops_are_marked(self):
        for uop in injector_for().expand(pointer_load()):
            if uop.kind is not UopKind.LOAD:
                assert uop.is_injected

    def test_check_uses_address_register_metadata(self):
        check = injector_for().expand(pointer_load())[0]
        assert check.meta_srcs == (int_reg(2),)


class TestDisabledAndArithmetic:
    def test_disabled_config_injects_nothing(self):
        injector = injector_for(WatchdogConfig.disabled())
        uops = injector.expand(pointer_load())
        assert len(uops) == 1
        assert injector.stats.injected_uops == 0

    def test_two_source_add_gets_select_uop(self):
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(1),
                           srcs=(int_reg(2), int_reg(3)))
        kinds = [u.kind for u in injector_for().expand(inst)]
        assert UopKind.META_SELECT in kinds

    def test_add_immediate_gets_no_extra_uop(self):
        """§6.2: single-source propagation is handled at rename, zero µops."""
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(1), srcs=(int_reg(2),), imm=8)
        assert len(injector_for().expand(inst)) == 1

    def test_call_and_return_get_frame_uops(self):
        injector = injector_for()
        call_kinds = [u.kind for u in injector.expand(Instruction(Opcode.CALL))]
        ret_kinds = [u.kind for u in injector.expand(Instruction(Opcode.RET))]
        assert UopKind.LOCK_PUSH in call_kinds
        assert UopKind.LOCK_POP in ret_kinds

    def test_frame_uops_cost_four(self):
        """Figure 3c/3d: the hardware injects four µops on call and return."""
        uops = injector_for().expand(Instruction(Opcode.CALL))
        frame = [u for u in uops if u.kind is UopKind.LOCK_PUSH][0]
        assert frame.uop_cost == 4


class TestBoundsModes:
    def test_separate_mode_adds_bounds_check_uop(self):
        injector = injector_for(WatchdogConfig.full_safety_two_uops())
        kinds = [u.kind for u in injector.expand(plain_load())]
        assert UopKind.BOUNDS_CHECK in kinds

    def test_fused_mode_adds_no_extra_uop(self):
        fused = injector_for(WatchdogConfig.full_safety_fused())
        plain = injector_for(WatchdogConfig.isa_assisted_uaf())
        assert len(fused.expand(plain_load())) == len(plain.expand(plain_load()))

    def test_bounds_mode_widens_shadow_transfers(self):
        """§8: 256-bit metadata doubles the shadow transfer cost."""
        fused = injector_for(WatchdogConfig.full_safety_fused())
        uops = fused.expand(pointer_load())
        shadow = [u for u in uops if u.kind is UopKind.SHADOW_LOAD][0]
        assert shadow.uop_cost == 2


class TestStats:
    def test_overhead_fraction_and_breakdown(self):
        injector = injector_for()
        for _ in range(10):
            injector.expand(pointer_load())
            injector.expand(plain_load())
        stats = injector.stats
        assert stats.baseline_uops == 20
        assert stats.check_uops == 20
        assert stats.pointer_load_uops == 10
        assert stats.overhead_fraction() > 1.0
        breakdown = stats.breakdown()
        assert set(breakdown) == {"checks", "pointer_loads", "pointer_stores", "other"}
        assert breakdown["checks"] == pytest.approx(1.0)

    def test_expand_block(self):
        injector = injector_for()
        uops = injector.expand_block([plain_load(), Instruction(Opcode.NOP)])
        assert len(uops) == 3
