"""Tests for the disjoint shadow metadata space."""

import pytest

from repro.errors import ProgramError
from repro.memory.address_space import AddressSpaceLayout
from repro.memory.shadow import ShadowSpace


@pytest.fixture
def shadow():
    return ShadowSpace()


class TestShadowAddressing:
    def test_shadow_address_is_in_shadow_region(self, shadow):
        addr = shadow.layout.heap.base + 0x40
        assert shadow.layout.is_shadow(shadow.shadow_address(addr))

    def test_adjacent_words_get_distinct_shadow_slots(self, shadow):
        base = shadow.layout.heap.base
        assert shadow.shadow_address(base) != shadow.shadow_address(base + 8)

    def test_same_word_same_shadow_address(self, shadow):
        base = shadow.layout.heap.base
        assert shadow.shadow_address(base) == shadow.shadow_address(base + 4)

    def test_metadata_words_scales_footprint(self):
        narrow = ShadowSpace(metadata_words=2)
        wide = ShadowSpace(metadata_words=4)
        addr = narrow.layout.heap.base
        narrow.store(addr, "meta")
        wide.store(addr, "meta")
        assert wide.shadow_footprint_bytes() == 2 * narrow.shadow_footprint_bytes()

    def test_invalid_metadata_words_rejected(self):
        with pytest.raises(ProgramError):
            ShadowSpace(metadata_words=3)


class TestShadowStorage:
    def test_missing_entry_reads_none(self, shadow):
        assert shadow.load(shadow.layout.heap.base) is None

    def test_store_load_roundtrip(self, shadow):
        addr = shadow.layout.heap.base + 16
        shadow.store(addr, "metadata")
        assert shadow.load(addr) == "metadata"

    def test_store_none_clears(self, shadow):
        addr = shadow.layout.heap.base
        shadow.store(addr, "metadata")
        shadow.store(addr, None)
        assert shadow.load(addr) is None
        assert shadow.live_entries() == 0

    def test_word_granularity(self, shadow):
        addr = shadow.layout.heap.base
        shadow.store(addr, "meta")
        assert shadow.load(addr + 7) == "meta"
        assert shadow.load(addr + 8) is None

    def test_clear_range(self, shadow):
        base = shadow.layout.heap.base
        for offset in range(0, 64, 8):
            shadow.store(base + offset, "m")
        shadow.clear_range(base, 32)
        assert shadow.load(base) is None
        assert shadow.load(base + 32) == "m"

    def test_bulk_initialize(self, shadow):
        base = shadow.layout.globals_seg.base
        shadow.bulk_initialize([base, base + 8, base + 16], "global")
        assert shadow.live_entries() == 3
        assert shadow.load(base + 8) == "global"

    def test_touched_shadow_words_count(self, shadow):
        shadow.store(shadow.layout.heap.base, "m")
        words = list(shadow.touched_shadow_words())
        assert len(words) == shadow.metadata_words

    def test_stats_counters(self, shadow):
        shadow.load(shadow.layout.heap.base)
        shadow.store(shadow.layout.heap.base, "m")
        assert shadow.loads == 1 and shadow.stores == 1
