"""Tests for the top-level simulator (integration of workload, injection, timing)."""

import pytest

from tests.helpers import build_uaf_program
from repro.core.config import WatchdogConfig
from repro.sim.simulator import Simulator
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import SyntheticWorkload

INSTRUCTIONS = 1_500


@pytest.fixture(scope="module")
def simulator():
    return Simulator()


class TestWorkloadRuns:
    def test_benchmark_run_produces_timing_and_stats(self, simulator):
        outcome = simulator.run_benchmark("gzip", WatchdogConfig.isa_assisted_uaf(),
                                          instructions=INSTRUCTIONS, seed=1)
        assert outcome.timing is not None and outcome.timing.cycles > 0
        assert outcome.injection is not None and outcome.injection.injected_uops > 0
        assert outcome.pointer_stats.memory_ops > 0
        assert outcome.pages.data_word_count > 0
        assert outcome.configuration == "isa-assisted"

    def test_watchdog_slower_than_baseline(self, simulator):
        base = simulator.run_benchmark("mcf", WatchdogConfig.disabled(),
                                       instructions=INSTRUCTIONS, seed=1)
        wd = simulator.run_benchmark("mcf", WatchdogConfig.conservative_uaf(),
                                     instructions=INSTRUCTIONS, seed=1)
        assert wd.timing.total_uops > base.timing.total_uops
        assert wd.cycles > base.cycles

    def test_conservative_injects_more_shadow_traffic_than_isa(self, simulator):
        cons = simulator.run_benchmark("gcc", WatchdogConfig.conservative_uaf(),
                                       instructions=INSTRUCTIONS, seed=2)
        isa = simulator.run_benchmark("gcc", WatchdogConfig.isa_assisted_uaf(),
                                      instructions=INSTRUCTIONS, seed=2)
        assert cons.pointer_stats.pointer_fraction > isa.pointer_stats.pointer_fraction
        assert cons.injection.pointer_load_uops >= isa.injection.pointer_load_uops

    def test_bounds_config_widens_memory_footprint(self, simulator):
        uaf = simulator.run_benchmark("perl", WatchdogConfig.isa_assisted_uaf(),
                                      instructions=INSTRUCTIONS, seed=3)
        bounds = simulator.run_benchmark("perl", WatchdogConfig.full_safety_two_uops(),
                                         instructions=INSTRUCTIONS, seed=3)
        assert bounds.pages.shadow_word_count > uaf.pages.shadow_word_count
        assert bounds.injection.bounds_check_uops > 0

    def test_baseline_has_no_injection(self, simulator):
        base = simulator.run_benchmark("lbm", WatchdogConfig.disabled(),
                                       instructions=INSTRUCTIONS, seed=1)
        assert base.injection.injected_uops == 0
        assert base.configuration == "baseline"

    def test_run_trace_accepts_external_trace(self, simulator):
        workload = SyntheticWorkload(profile_by_name("go"), seed=4)
        outcome = simulator.run_trace(workload.generate(500),
                                      WatchdogConfig.isa_assisted_uaf(), name="go")
        assert outcome.benchmark == "go"
        assert outcome.timing.cycles > 0

    def test_config_names(self, simulator):
        assert Simulator._config_name(WatchdogConfig.no_lock_cache()) == \
            "isa-assisted+no-lock-cache"
        assert Simulator._config_name(WatchdogConfig.full_safety_fused()) == \
            "isa-assisted+fused-1uop"
        assert Simulator._config_name(WatchdogConfig.idealized_shadow()) == \
            "isa-assisted+ideal-shadow"


class TestProgramRuns:
    def test_run_program_reports_detection(self, simulator):
        outcome = simulator.run_program(build_uaf_program(),
                                        WatchdogConfig.isa_assisted_uaf())
        assert outcome.detected
        assert outcome.detection.violation_kind == "use-after-free"

    def test_run_program_with_timing(self, simulator):
        outcome = simulator.run_program(build_uaf_program(),
                                        WatchdogConfig.isa_assisted_uaf(),
                                        with_timing=True)
        assert outcome.timing is not None and outcome.timing.cycles > 0

    def test_run_program_baseline_misses_error(self, simulator):
        outcome = simulator.run_program(build_uaf_program(), WatchdogConfig.disabled())
        assert not outcome.detected
