"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.allocator.dlmalloc import DlMallocAllocator
from repro.allocator.runtime import InstrumentedRuntime
from repro.core.identifier import IdentifierTable
from repro.core.metadata import PointerMetadata
from repro.core.renaming import INVALID_MAPPING, MetadataRenamer
from repro.isa.instructions import Instruction, Opcode
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import int_reg
from repro.memory.address_space import AddressSpace
from repro.memory.cache import Cache, CacheConfig
from repro.memory.pages import PageAccountant
from repro.memory.shadow import ShadowSpace

sizes = st.integers(min_value=1, max_value=4096)
small_ints = st.integers(min_value=0, max_value=63)


class TestAllocatorProperties:
    @given(st.lists(sizes, min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_live_allocations_never_overlap(self, requests):
        """No two live chunks ever share a byte, whatever the request mix."""
        allocator = DlMallocAllocator(AddressSpace())
        live = {}
        for index, size in enumerate(requests):
            address = allocator.malloc(size)
            live[address] = allocator.chunk_size(address)
            if index % 3 == 2:                       # free every third allocation
                victim = sorted(live)[len(live) // 2]
                allocator.free(victim)
                del live[victim]
            spans = sorted((base, base + length) for base, length in live.items())
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end <= start

    @given(st.lists(sizes, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_alignment_and_ownership(self, requests):
        allocator = DlMallocAllocator(AddressSpace())
        for size in requests:
            address = allocator.malloc(size)
            assert address % 16 == 0
            assert allocator.owns(address)
            assert allocator.chunk_size(address) >= size


class TestIdentifierProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_stale_identifiers_never_revalidate(self, frees):
        """However allocation/deallocation interleave, an invalidated
        identifier never validates again (keys are never reused, §4.1)."""
        memory = AddressSpace()
        table = IdentifierTable(memory)
        stale = []
        live = []
        for do_free in frees:
            if do_free and live:
                ident = live.pop()
                table.invalidate(ident)
                stale.append(ident)
            else:
                live.append(table.allocate_identifier())
            for ident in stale:
                assert not table.is_valid(ident)
            for ident in live:
                assert table.is_valid(ident)

    @given(st.lists(sizes, min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_runtime_keys_are_unique_across_reuse(self, requests):
        runtime = InstrumentedRuntime(AddressSpace())
        seen_keys = set()
        previous = None
        for size in requests:
            pointer, metadata = runtime.malloc(size)
            assert metadata.identifier.key not in seen_keys
            seen_keys.add(metadata.identifier.key)
            if previous is not None:
                runtime.free(*previous)
            previous = (pointer, metadata)


class TestShadowProperties:
    @given(st.integers(min_value=0, max_value=(1 << 40) - 8), st.integers(0, 7))
    @settings(max_examples=200, deadline=None)
    def test_shadow_mapping_is_word_stable_and_disjoint(self, address, offset):
        shadow = ShadowSpace()
        base = shadow.layout.heap.base + (address & ~7)
        assert shadow.shadow_address(base) == shadow.shadow_address(base + offset)
        assert shadow.layout.is_shadow(shadow.shadow_address(base))

    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(0, 1000)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_shadow_store_load_consistency(self, writes):
        shadow = ShadowSpace()
        expected = {}
        heap = shadow.layout.heap.base
        for word_index, value in writes:
            address = heap + word_index * 8
            shadow.store(address, value)
            expected[address] = value
        for address, value in expected.items():
            assert shadow.load(address) == value


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache(CacheConfig("c", 4096, 4, 64))
        for address in addresses:
            cache.access(address)
        assert cache.hits + cache.misses == len(addresses)
        assert 0.0 <= cache.miss_rate <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_immediate_re_access_always_hits(self, addresses):
        cache = Cache(CacheConfig("c", 8192, 8, 64))
        for address in addresses:
            cache.access(address)
            assert cache.access(address).hit


class TestRenamerProperties:
    @given(st.lists(st.sampled_from(["fresh", "copy", "invalidate"]),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_refcounts_never_leak_or_go_negative(self, actions):
        """Reference-counted metadata registers are freed exactly when the
        last mapping goes away [33]."""
        renamer = MetadataRenamer(num_metadata_physical_registers=64)
        registers = [int_reg(i) for i in range(8)]
        for index, action in enumerate(actions):
            target = registers[index % len(registers)]
            source = registers[(index + 1) % len(registers)]
            if action == "fresh":
                renamer.assign_fresh(target)
            elif action == "copy":
                inst = Instruction(Opcode.MOV_RR, dest=target, srcs=(source,))
                renamer.rename(MicroOp(kind=UopKind.ALU, dest=target,
                                       srcs=(source,), macro=inst))
            else:
                renamer.invalidate(target)
            live_mappings = set(renamer.mapped_registers().values())
            assert len(live_mappings) == renamer.pool.live_registers
            for mapping in live_mappings:
                assert renamer.pool.refcount(mapping) >= 1

    @given(st.lists(st.integers(0, 1 << 30), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_page_accounting_monotonic(self, addresses):
        pages = PageAccountant()
        previous_words = 0
        for address in addresses:
            pages.touch_data(address)
            assert pages.data_word_count >= previous_words
            previous_words = pages.data_word_count
        assert pages.data_page_count <= pages.data_word_count


class TestMetadataProperties:
    @given(st.integers(0, 1 << 40), st.integers(1, 1 << 16), st.integers(0, 1 << 17),
           st.integers(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_bounds_contains_iff_inside(self, base, size, offset, access):
        from repro.core.identifier import Identifier
        metadata = PointerMetadata(identifier=Identifier(key=3, lock=0x100),
                                   base=base, bound=base + size)
        address = base + offset
        inside = offset + access <= size
        assert metadata.contains(address, access) == inside
