"""Tests for the sweep engine: specs, determinism, caching, JSON round-trips."""

import json

import pytest

from repro.core.config import WatchdogConfig
from repro.experiments import fig7_runtime_overhead as fig7
from repro.experiments.common import ExperimentSettings, OverheadSweep
from repro.sim.cache import ResultCache, request_fingerprint
from repro.sim.engine import SweepEngine
from repro.sim.results import BenchmarkResult, CellResult, ExperimentResult
from repro.sim.spec import BASELINE_LABEL, ExperimentSpec, RunRequest
from repro.workloads.bundle import TraceBundle

#: Deliberately tiny: two benchmarks, short traces, so the whole engine layer
#: (including a real process pool) runs in a few seconds.
QUICK = ExperimentSettings.quick(benchmarks=("gzip", "mcf"), instructions=1200)

ISA = "isa-assisted"


def quick_spec(include_baseline=True) -> ExperimentSpec:
    return ExperimentSpec.build("quick", {
        ISA: WatchdogConfig.isa_assisted_uaf(),
        "conservative": WatchdogConfig.conservative_uaf(),
    }, settings=QUICK, include_baseline=include_baseline)


class TestSpecs:
    def test_requests_enumerate_full_grid_in_order(self):
        requests = quick_spec().requests()
        assert [r.key for r in requests] == [
            ("gzip", BASELINE_LABEL), ("gzip", ISA), ("gzip", "conservative"),
            ("mcf", BASELINE_LABEL), ("mcf", ISA), ("mcf", "conservative"),
        ]
        assert len(quick_spec()) == len(requests)

    def test_baseline_can_be_excluded(self):
        labels = {r.label for r in quick_spec(include_baseline=False).requests()}
        assert BASELINE_LABEL not in labels

    def test_requests_carry_settings(self):
        request = quick_spec().requests()[0]
        assert request.instructions == QUICK.instructions
        assert request.seed == QUICK.seed


class TestTraceSharing:
    def test_bundle_generation_is_deterministic(self):
        first = TraceBundle.generate("gzip", seed=7, instructions=600)
        second = TraceBundle.generate("gzip", seed=7, instructions=600)
        assert first.measured == second.measured
        assert first.warmup == second.warmup
        assert first.working_set == second.working_set

    def test_bundle_replay_matches_per_config_regeneration(self):
        from repro.sim.simulator import Simulator

        simulator = Simulator()
        bundle = TraceBundle.generate("mcf", seed=3, instructions=800)
        for config in (WatchdogConfig.disabled(), WatchdogConfig.isa_assisted_uaf()):
            replayed = simulator.run_bundle(bundle, config)
            regenerated = simulator.run_benchmark("mcf", config,
                                                  instructions=800, seed=3)
            assert replayed.cycles == regenerated.cycles
            assert replayed.timing.total_uops == regenerated.timing.total_uops

    def test_bundle_is_reusable_across_configs(self):
        from repro.sim.simulator import Simulator

        simulator = Simulator()
        bundle = TraceBundle.generate("gzip", seed=7, instructions=600)
        first = simulator.run_bundle(bundle, WatchdogConfig.isa_assisted_uaf())
        second = simulator.run_bundle(bundle, WatchdogConfig.isa_assisted_uaf())
        assert first.cycles == second.cycles


class TestDeterminism:
    def test_parallel_results_identical_to_serial(self):
        serial = SweepEngine(workers=1).run_spec(quick_spec())
        parallel = SweepEngine(workers=4).run_spec(quick_spec())
        assert serial == parallel

    def test_fig7_summary_identical_serial_vs_parallel(self):
        result_serial = fig7.run(sweep=OverheadSweep(QUICK, workers=1))
        result_parallel = fig7.run(sweep=OverheadSweep(QUICK, workers=4))
        assert result_serial.series == result_parallel.series
        assert result_serial.summary == result_parallel.summary

    def test_engine_memoizes_cells(self):
        engine = SweepEngine()
        sweep = OverheadSweep(QUICK, engine=engine)
        config = WatchdogConfig.isa_assisted_uaf()
        first = sweep.outcome("gzip", ISA, config)
        simulated = engine.simulated_cells
        second = sweep.outcome("gzip", ISA, config)
        assert first is second
        assert engine.simulated_cells == simulated

    def test_memo_shares_identical_config_across_labels(self):
        # fig7 calls isa_assisted_uaf "isa-assisted", fig9 "with-lock-cache",
        # fig11 "watchdog": one simulation must serve all three.
        engine = SweepEngine()
        sweep = OverheadSweep(QUICK, engine=engine)
        config = WatchdogConfig.isa_assisted_uaf()
        first = sweep.outcome("gzip", "isa-assisted", config)
        relabelled = sweep.outcome("gzip", "watchdog", config)
        assert engine.simulated_cells == 1
        assert relabelled.configuration == "watchdog"
        assert relabelled.cycles == first.cycles

    def test_run_configs_prefills_the_grid(self):
        engine = SweepEngine()
        sweep = OverheadSweep(QUICK, engine=engine)
        sweep.run_configs({ISA: WatchdogConfig.isa_assisted_uaf()})
        simulated = engine.simulated_cells
        assert simulated == 2 * len(QUICK.benchmarks)  # baseline + config
        sweep.geo_mean_overhead(ISA, WatchdogConfig.isa_assisted_uaf())
        assert engine.simulated_cells == simulated  # all served from memo

    def test_memo_does_not_alias_same_label_different_inputs(self):
        engine = SweepEngine()
        isa = engine.cell(RunRequest("gzip", "wd", WatchdogConfig.isa_assisted_uaf(),
                                     instructions=1200, seed=7))
        other = engine.cell(RunRequest("gzip", "wd", WatchdogConfig.conservative_uaf(),
                                       instructions=2400, seed=9))
        assert engine.simulated_cells == 2
        assert other is not isa
        assert other.total_uops != isa.total_uops


class TestResultCache:
    def test_warm_rerun_simulates_nothing(self, tmp_path):
        cold = SweepEngine(cache=ResultCache(tmp_path))
        cold_cells = cold.run_spec(quick_spec())
        assert cold.simulated_cells == len(quick_spec())

        warm = SweepEngine(cache=ResultCache(tmp_path))
        warm_cells = warm.run_spec(quick_spec())
        assert warm.simulated_cells == 0
        assert warm.cache.hits == len(quick_spec())
        assert warm_cells == cold_cells

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        SweepEngine(workers=4, cache=ResultCache(tmp_path)).run_spec(quick_spec())
        warm = SweepEngine(workers=1, cache=ResultCache(tmp_path))
        warm.run_spec(quick_spec())
        assert warm.simulated_cells == 0

    def test_key_changes_with_config(self):
        base = RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                          instructions=1200, seed=7)
        assert request_fingerprint(base) == request_fingerprint(base)
        for variant in (
                RunRequest("gzip", ISA, WatchdogConfig.conservative_uaf(),
                           instructions=1200, seed=7),
                RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                           instructions=1300, seed=7),
                RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                           instructions=1200, seed=8),
                RunRequest("mcf", ISA, WatchdogConfig.isa_assisted_uaf(),
                           instructions=1200, seed=7),
        ):
            assert request_fingerprint(variant) != request_fingerprint(base)

    def test_key_ignores_cosmetic_label(self):
        config = WatchdogConfig.isa_assisted_uaf()
        a = RunRequest("gzip", "label-a", config, instructions=1200, seed=7)
        b = RunRequest("gzip", "label-b", config, instructions=1200, seed=7)
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_config_change_invalidates_cached_cell(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = SweepEngine(cache=cache)
        sweep = OverheadSweep(QUICK, engine=engine)
        sweep.outcome("gzip", "wd", WatchdogConfig.isa_assisted_uaf())
        assert engine.simulated_cells == 1

        changed = SweepEngine(cache=ResultCache(tmp_path))
        OverheadSweep(QUICK, engine=changed).outcome(
            "gzip", "wd", WatchdogConfig.no_lock_cache())
        assert changed.simulated_cells == 1  # miss: different configuration

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                             instructions=1200, seed=7)
        key = cache.key(request)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.load(key) is None

    def test_incomplete_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest("gzip", ISA, WatchdogConfig.isa_assisted_uaf(),
                             instructions=1200, seed=7)
        key = cache.key(request)
        # Valid JSON, but missing the stat fields: must re-simulate, not
        # load as a zero-cycle cell.
        (tmp_path / f"{key}.json").write_text(
            json.dumps({"benchmark": "gzip", "configuration": ISA}))
        assert cache.load(key) is None


class TestCellResultParity:
    def test_derived_stats_match_outcome_objects(self):
        """CellResult's derived formulas mirror the live stat objects.

        The cell stores flat counters; these assertions pin its re-derived
        fractions to the source implementations (InjectionStats,
        PointerIdStats, PageAccountant) so the two cannot drift silently.
        """
        from repro.sim.simulator import Simulator

        outcome = Simulator().run_benchmark(
            "gzip", WatchdogConfig.isa_assisted_uaf(), instructions=1200, seed=7)
        cell = CellResult.from_outcome(outcome, label=ISA)
        assert cell.uop_breakdown() == outcome.injection.breakdown()
        assert cell.uop_overhead_fraction() == outcome.injection.overhead_fraction()
        assert cell.pointer_fraction == outcome.pointer_stats.pointer_fraction
        assert cell.word_overhead() == outcome.pages.word_overhead()
        assert cell.page_overhead() == outcome.pages.page_overhead()
        assert cell.cycles == outcome.timing.cycles


class TestJsonRoundTrips:
    def test_cell_result_roundtrip(self):
        engine = SweepEngine()
        cell = engine.cell(RunRequest("gzip", ISA,
                                      WatchdogConfig.isa_assisted_uaf(),
                                      instructions=1200, seed=7))
        assert cell.cycles > 0 and cell.pointer_fraction > 0
        restored = CellResult.from_dict(json.loads(json.dumps(cell.to_dict())))
        assert restored == cell

    def test_benchmark_result_roundtrip(self):
        record = BenchmarkResult(benchmark="gzip", configuration=ISA,
                                 cycles=100, total_uops=150, injected_uops=50,
                                 memory_accesses=40, extras={"mpki": 0.5})
        restored = BenchmarkResult.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert restored == record

    def test_experiment_result_roundtrip(self):
        result = ExperimentResult(name="fig7")
        result.add_value(ISA, "gzip", 12.5)
        result.add_summary("geomean", 11.0)
        result.notes.append("paper: 15%")
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert restored.name == result.name
        assert restored.series == result.series
        assert restored.summary == result.summary
        assert restored.notes == result.notes

    def test_from_dict_ignores_unknown_fields(self):
        cell = CellResult(benchmark="gzip", configuration=ISA, cycles=10)
        data = cell.to_dict()
        data["added_in_future_schema"] = 1
        assert CellResult.from_dict(data) == cell
