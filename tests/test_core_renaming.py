"""Tests for decoupled register metadata and rename-time copy elimination (§6)."""

import pytest

from repro.core.config import WatchdogConfig
from repro.core.renaming import INVALID_MAPPING, MetadataRenamer, ReferenceCountedPool
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import int_reg


def alu_uop(inst):
    return MicroOp(kind=UopKind.ALU, dest=inst.dest, srcs=inst.srcs, macro=inst)


class TestReferenceCountedPool:
    def test_allocate_and_release(self):
        pool = ReferenceCountedPool(4)
        reg = pool.allocate()
        assert pool.live_registers == 1
        assert pool.release(reg)
        assert pool.live_registers == 0

    def test_shared_register_freed_only_at_last_release(self):
        pool = ReferenceCountedPool(4)
        reg = pool.allocate()
        pool.add_reference(reg)
        assert not pool.release(reg)
        assert pool.release(reg)

    def test_exhaustion(self):
        pool = ReferenceCountedPool(1)
        pool.allocate()
        with pytest.raises(SimulationError):
            pool.allocate()

    def test_invalid_mapping_ignored(self):
        pool = ReferenceCountedPool(2)
        pool.add_reference(INVALID_MAPPING)
        assert not pool.release(INVALID_MAPPING)


class TestCopyElimination:
    def test_single_source_op_shares_physical_register(self):
        """Figure 6: add-immediate copies metadata by remapping, no new register."""
        renamer = MetadataRenamer()
        source = int_reg(2)
        renamer.assign_fresh(source)
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(3), srcs=(source,), imm=8)
        result = renamer.rename(alu_uop(inst))
        assert result.eliminated_copy
        assert renamer.mapping_of(int_reg(3)) == renamer.mapping_of(source)
        assert renamer.stats.metadata_copies_eliminated == 1

    def test_shared_register_reference_counted(self):
        renamer = MetadataRenamer()
        source = int_reg(2)
        mapping = renamer.assign_fresh(source)
        inst = Instruction(Opcode.MOV_RR, dest=int_reg(3), srcs=(source,))
        renamer.rename(alu_uop(inst))
        assert renamer.pool.refcount(mapping) == 2
        # Overwriting one of the two mappings must not free the register.
        renamer.invalidate(int_reg(3))
        assert renamer.pool.refcount(mapping) == 1
        renamer.invalidate(source)
        assert renamer.pool.refcount(mapping) == 0

    def test_copy_from_invalid_source_propagates_invalid(self):
        renamer = MetadataRenamer()
        inst = Instruction(Opcode.MOV_RR, dest=int_reg(3), srcs=(int_reg(2),))
        renamer.rename(alu_uop(inst))
        assert renamer.mapping_of(int_reg(3)) == INVALID_MAPPING

    def test_ablation_without_copy_elimination_allocates(self):
        renamer = MetadataRenamer(WatchdogConfig(copy_elimination=False))
        renamer.assign_fresh(int_reg(2))
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(3), srcs=(int_reg(2),), imm=8)
        result = renamer.rename(alu_uop(inst))
        assert not result.eliminated_copy
        assert renamer.mapping_of(int_reg(3)) != renamer.mapping_of(int_reg(2))


class TestInvalidationAndSelect:
    def test_non_pointer_producer_invalidates(self):
        """§6.2 case two: a divide's output can never be a valid pointer."""
        renamer = MetadataRenamer()
        renamer.assign_fresh(int_reg(3))
        inst = Instruction(Opcode.DIV_RR, dest=int_reg(3), srcs=(int_reg(1), int_reg(2)))
        renamer.rename(MicroOp(kind=UopKind.DIV, dest=int_reg(3), srcs=inst.srcs,
                               macro=inst))
        assert renamer.mapping_of(int_reg(3)) == INVALID_MAPPING
        assert renamer.stats.metadata_invalidations >= 1

    def test_mov_immediate_invalidates(self):
        renamer = MetadataRenamer()
        renamer.assign_fresh(int_reg(1))
        inst = Instruction(Opcode.MOV_RI, dest=int_reg(1), imm=5)
        renamer.rename(alu_uop(inst))
        assert renamer.mapping_of(int_reg(1)) == INVALID_MAPPING

    def test_select_uop_allocates_fresh_register(self):
        """§6.2 case three: either source may be the pointer."""
        renamer = MetadataRenamer()
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(3), srcs=(int_reg(1), int_reg(2)))
        select = MicroOp(kind=UopKind.META_SELECT, meta_dest=int_reg(3),
                         meta_srcs=inst.srcs, macro=inst, injected=True)
        result = renamer.rename(select)
        assert result.meta_dest != INVALID_MAPPING
        assert renamer.stats.select_allocations == 1

    def test_shadow_load_installs_fresh_mapping(self):
        renamer = MetadataRenamer()
        inst = Instruction(Opcode.LOAD, dest=int_reg(4), srcs=(int_reg(2),))
        shadow = MicroOp(kind=UopKind.SHADOW_LOAD, meta_dest=int_reg(4),
                         meta_srcs=(int_reg(2),), macro=inst, injected=True)
        result = renamer.rename(shadow)
        assert renamer.mapping_of(int_reg(4)) == result.meta_dest

    def test_plain_load_invalidates_destination_metadata(self):
        renamer = MetadataRenamer()
        renamer.assign_fresh(int_reg(4))
        inst = Instruction(Opcode.LOAD, dest=int_reg(4), srcs=(int_reg(2),))
        renamer.rename(MicroOp(kind=UopKind.LOAD, dest=int_reg(4), srcs=(int_reg(2),),
                               macro=inst))
        assert renamer.mapping_of(int_reg(4)) == INVALID_MAPPING

    def test_check_uop_reads_metadata_sources(self):
        renamer = MetadataRenamer()
        mapping = renamer.assign_fresh(int_reg(2))
        check = MicroOp(kind=UopKind.CHECK, srcs=(int_reg(2),),
                        meta_srcs=(int_reg(2),), injected=True)
        result = renamer.rename(check)
        assert result.meta_sources == (mapping,)

    def test_mapped_registers_view(self):
        renamer = MetadataRenamer()
        renamer.assign_fresh(int_reg(2))
        assert int_reg(2) in renamer.mapped_registers()
        assert renamer.live_metadata_registers() == 1
