"""Tests for the Table 2 machine configuration and execution resources."""

import pytest

from repro.core.config import WatchdogConfig
from repro.isa.microops import UopKind
from repro.pipeline.config import FunctionalUnitConfig, MachineConfig
from repro.pipeline.resources import FunctionalUnits, PortPool
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_table2_defaults(self):
        machine = MachineConfig()
        assert machine.clock_ghz == pytest.approx(3.2)
        assert machine.issue_width == 6
        assert machine.rob_entries == 168
        assert machine.iq_entries == 54
        assert machine.lq_entries == 64
        assert machine.sq_entries == 36
        assert machine.hierarchy.l1d.size_bytes == 32 * 1024
        assert machine.hierarchy.l2.size_bytes == 256 * 1024
        assert machine.hierarchy.l3.size_bytes == 16 * 1024 * 1024
        assert machine.hierarchy.lock_cache.size_bytes == 4 * 1024

    def test_functional_unit_counts(self):
        units = FunctionalUnitConfig()
        assert units.int_alu == 6
        assert units.load_ports == 2
        assert units.store_ports == 1

    def test_latency_table(self):
        machine = MachineConfig()
        assert machine.latency_for(UopKind.ALU) == 1
        assert machine.latency_for(UopKind.DIV) > machine.latency_for(UopKind.MUL)

    def test_describe_mentions_key_structures(self):
        text = MachineConfig().describe()
        assert "168-entry ROB" in text
        assert "Lock Location" in text

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(issue_width=0)


class TestPortPool:
    def test_single_port_serialises(self):
        pool = PortPool("p", 1)
        assert pool.reserve(0) == 0
        assert pool.reserve(0) == 1
        assert pool.reserve(0) == 2

    def test_two_ports_allow_two_per_cycle(self):
        pool = PortPool("p", 2)
        assert pool.reserve(0) == 0
        assert pool.reserve(0) == 0
        assert pool.reserve(0) == 1

    def test_reserve_respects_earliest(self):
        pool = PortPool("p", 1)
        assert pool.reserve(10) == 10

    def test_average_wait(self):
        pool = PortPool("p", 1)
        pool.reserve(0)
        pool.reserve(0)
        assert pool.average_wait() == pytest.approx(0.5)

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            PortPool("p", 0)


class TestFunctionalUnits:
    def test_check_uses_lock_port_when_cache_enabled(self):
        units = FunctionalUnits(FunctionalUnitConfig(), WatchdogConfig.isa_assisted_uaf())
        assert units.pool_for(UopKind.CHECK) is units.lock

    def test_check_uses_load_ports_without_lock_cache(self):
        """The Figure 9 contention effect: checks steal data-cache bandwidth."""
        units = FunctionalUnits(FunctionalUnitConfig(), WatchdogConfig.no_lock_cache())
        assert units.pool_for(UopKind.CHECK) is units.load

    def test_shadow_accesses_use_data_ports(self):
        units = FunctionalUnits(FunctionalUnitConfig(), WatchdogConfig.isa_assisted_uaf())
        assert units.pool_for(UopKind.SHADOW_LOAD) is units.load
        assert units.pool_for(UopKind.SHADOW_STORE) is units.store

    def test_standard_mappings(self):
        units = FunctionalUnits(FunctionalUnitConfig(), WatchdogConfig())
        assert units.pool_for(UopKind.LOAD) is units.load
        assert units.pool_for(UopKind.MUL) is units.muldiv
        assert units.pool_for(UopKind.FP) is units.fp
        assert units.pool_for(UopKind.BRANCH) is units.branch
        assert units.pool_for(UopKind.META_SELECT) is units.alu

    def test_all_pools_exposed(self):
        units = FunctionalUnits(FunctionalUnitConfig(), WatchdogConfig())
        assert set(units.all_pools()) == {"alu", "branch", "load", "store",
                                          "muldiv", "fp", "lock"}
