"""Tests for lock-and-key identifiers (§4.1)."""

import pytest

from repro.core.identifier import (
    GLOBAL_KEY,
    INVALID_KEY,
    Identifier,
    IdentifierTable,
    KeyGenerator,
    LockLocationAllocator,
)
from repro.errors import OutOfMemoryError, ProgramError
from repro.memory.address_space import AddressSpace, Segment


class TestKeyGenerator:
    def test_keys_are_unique_and_monotonic(self):
        generator = KeyGenerator()
        keys = [generator.next_key() for _ in range(100)]
        assert len(set(keys)) == 100
        assert keys == sorted(keys)

    def test_keys_never_equal_invalid_or_global(self):
        generator = KeyGenerator()
        for _ in range(10):
            key = generator.next_key()
            assert key not in (INVALID_KEY, GLOBAL_KEY)

    def test_invalid_first_key_rejected(self):
        with pytest.raises(ProgramError):
            KeyGenerator(first_key=INVALID_KEY)

    def test_keys_issued_counter(self):
        generator = KeyGenerator()
        generator.next_key()
        generator.next_key()
        assert generator.keys_issued == 2


class TestLockLocationAllocator:
    def test_allocates_from_lock_region(self, memory):
        allocator = LockLocationAllocator(memory)
        lock = allocator.allocate()
        assert memory.layout.lock_region.contains(lock)

    def test_locations_are_word_spaced(self, memory):
        allocator = LockLocationAllocator(memory)
        first = allocator.allocate()
        second = allocator.allocate()
        assert second - first == 8

    def test_lifo_recycling(self, memory):
        """§4.2: lock locations are reallocated using a LIFO free list."""
        allocator = LockLocationAllocator(memory)
        a = allocator.allocate()
        b = allocator.allocate()
        allocator.release(a)
        allocator.release(b)
        assert allocator.allocate() == b
        assert allocator.allocate() == a

    def test_release_outside_region_rejected(self, memory):
        allocator = LockLocationAllocator(memory)
        with pytest.raises(ProgramError):
            allocator.release(memory.layout.heap.base)

    def test_exhaustion(self, memory):
        region = Segment("locks", memory.layout.lock_region.base,
                         memory.layout.lock_region.base + 16)
        allocator = LockLocationAllocator(memory, region)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(OutOfMemoryError):
            allocator.allocate()

    def test_live_count(self, memory):
        allocator = LockLocationAllocator(memory)
        a = allocator.allocate()
        allocator.allocate()
        allocator.release(a)
        assert allocator.live_lock_locations == 1


class TestIdentifierTable:
    def test_new_identifier_is_valid(self, memory):
        table = IdentifierTable(memory)
        ident = table.allocate_identifier()
        assert table.is_valid(ident)
        assert memory.load_word(ident.lock) == ident.key

    def test_invalidate_makes_identifier_stale(self, memory):
        table = IdentifierTable(memory)
        ident = table.allocate_identifier()
        table.invalidate(ident)
        assert not table.is_valid(ident)
        assert memory.load_word(ident.lock) == INVALID_KEY

    def test_reused_lock_location_never_revalidates_old_identifier(self, memory):
        """Keys are never reused, so a recycled lock location can never make a
        stale identifier look valid again (§4.1)."""
        table = IdentifierTable(memory)
        old = table.allocate_identifier()
        table.invalidate(old)
        new = table.allocate_identifier()
        assert new.lock == old.lock
        assert table.is_valid(new)
        assert not table.is_valid(old)

    def test_global_identifier_always_valid_and_singleton(self, memory):
        table = IdentifierTable(memory)
        first = table.global_identifier()
        second = table.global_identifier()
        assert first == second
        assert first.key == GLOBAL_KEY
        assert table.is_valid(first)


class TestIdentifierValue:
    def test_identifier_equality_and_str(self):
        a = Identifier(key=5, lock=0xB0)
        assert a == Identifier(key=5, lock=0xB0)
        assert "key=5" in str(a)

    def test_negative_fields_rejected(self):
        with pytest.raises(ProgramError):
            Identifier(key=-1, lock=0)

    def test_global_flag(self):
        assert Identifier(key=GLOBAL_KEY, lock=0x10).is_global
        assert not Identifier(key=7, lock=0x10).is_global
