"""Shared fixtures for the test suite.

Plain helper functions (program builders) live in :mod:`tests.helpers` so
test modules can import them explicitly; importing from ``conftest`` breaks
as soon as another conftest module exists in the same session.
"""

import pytest

from repro.core.config import WatchdogConfig
from repro.core.watchdog import Watchdog
from repro.memory.address_space import AddressSpace
from repro.program.machine import Machine


@pytest.fixture
def memory():
    """A fresh simulated address space."""
    return AddressSpace()


@pytest.fixture
def uaf_config():
    """ISA-assisted use-after-free configuration (the paper's headline one)."""
    return WatchdogConfig.isa_assisted_uaf()


@pytest.fixture
def conservative_config():
    return WatchdogConfig.conservative_uaf()


@pytest.fixture
def bounds_config():
    return WatchdogConfig.full_safety_two_uops()


@pytest.fixture
def disabled_config():
    return WatchdogConfig.disabled()


@pytest.fixture
def watchdog(uaf_config):
    """A Watchdog engine with a fresh address space."""
    return Watchdog(uaf_config)


@pytest.fixture
def machine(uaf_config):
    """A functional machine under the ISA-assisted UAF configuration."""
    return Machine(uaf_config)
