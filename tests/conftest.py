"""Shared fixtures for the test suite."""

import pytest

from repro.core.config import WatchdogConfig
from repro.core.watchdog import Watchdog
from repro.memory.address_space import AddressSpace
from repro.program.builder import ProgramBuilder
from repro.program.machine import Machine


@pytest.fixture
def memory():
    """A fresh simulated address space."""
    return AddressSpace()


@pytest.fixture
def uaf_config():
    """ISA-assisted use-after-free configuration (the paper's headline one)."""
    return WatchdogConfig.isa_assisted_uaf()


@pytest.fixture
def conservative_config():
    return WatchdogConfig.conservative_uaf()


@pytest.fixture
def bounds_config():
    return WatchdogConfig.full_safety_two_uops()


@pytest.fixture
def disabled_config():
    return WatchdogConfig.disabled()


@pytest.fixture
def watchdog(uaf_config):
    """A Watchdog engine with a fresh address space."""
    return Watchdog(uaf_config)


@pytest.fixture
def machine(uaf_config):
    """A functional machine under the ISA-assisted UAF configuration."""
    return Machine(uaf_config)


def build_uaf_program():
    """The Figure 1 (left) heap use-after-free program."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)
        main.mov("r2", "r1")
        main.free("r1")
        main.malloc("r3", 64)
        main.load("r4", "r2")
    return builder.build()


def build_benign_program():
    """A correct program: allocate, use, free."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)
        main.mov_imm("r8", 42)
        main.store("r1", "r8", 8)
        main.load("r9", "r1", 8)
        main.free("r1")
    return builder.build()
