"""Tests for hardware stack-frame identifier management (Figure 3c/3d)."""

import pytest

from repro.core.identifier import INVALID_KEY
from repro.core.stack_frames import StackFrameManager
from repro.errors import SimulationError


@pytest.fixture
def frames(memory):
    return StackFrameManager(memory)


class TestCallReturn:
    def test_initial_frame_has_valid_identifier(self, frames, memory):
        ident = frames.current_identifier()
        assert memory.load_word(ident.lock) == ident.key

    def test_call_allocates_new_key_and_lock(self, frames):
        before = frames.current_identifier()
        after = frames.on_call()
        assert after.key == before.key + 1
        assert after.lock == before.lock + 8
        assert frames.depth == 1

    def test_key_written_to_lock_on_call(self, frames, memory):
        ident = frames.on_call()
        assert memory.load_word(ident.lock) == ident.key

    def test_return_invalidates_frame_lock(self, frames, memory):
        ident = frames.on_call()
        frames.on_return()
        assert memory.load_word(ident.lock) == INVALID_KEY

    def test_return_restores_caller_identifier(self, frames):
        caller = frames.current_identifier()
        frames.on_call()
        restored = frames.on_return()
        assert restored == caller

    def test_nested_calls(self, frames):
        frames.on_call()
        frames.on_call()
        assert frames.depth == 2
        frames.on_return()
        frames.on_return()
        assert frames.depth == 0

    def test_return_without_call_rejected(self, frames):
        with pytest.raises(SimulationError):
            frames.on_return()

    def test_stale_frame_detected_even_after_new_call(self, frames, memory):
        """The Figure 1 (right) scenario: a pointer into a popped frame keeps
        the old (key, lock); a later call reuses the lock location with a new
        key, so the stale identifier still fails to validate."""
        stale = frames.on_call()
        frames.on_return()
        fresh = frames.on_call()
        assert fresh.lock == stale.lock
        assert memory.load_word(stale.lock) == fresh.key
        assert memory.load_word(stale.lock) != stale.key

    def test_keys_never_reused_across_frames(self, frames):
        keys = set()
        for _ in range(20):
            keys.add(frames.on_call().key)
            frames.on_return()
        assert len(keys) == 20


class TestFrameMetadata:
    def test_metadata_without_bounds_by_default(self, frames):
        metadata = frames.current_frame_metadata()
        assert not metadata.has_bounds

    def test_metadata_with_bounds_when_tracking(self, memory):
        frames = StackFrameManager(memory, track_bounds=True)
        metadata = frames.current_frame_metadata(frame_base=0x7000_0000, frame_size=64)
        assert metadata.base == 0x7000_0000
        assert metadata.bound == 0x7000_0040

    def test_overflow_protection(self, memory):
        from repro.memory.address_space import Segment
        region = Segment("stack-locks", memory.layout.lock_region.base,
                         memory.layout.lock_region.base + 24)
        frames = StackFrameManager(memory, lock_stack_region=region)
        frames.on_call()
        with pytest.raises(SimulationError):
            frames.on_call()
            frames.on_call()
