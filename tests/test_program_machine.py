"""Tests for the functional machine (detection ground truth)."""

import pytest

from tests.helpers import build_benign_program, build_uaf_program
from repro.core.config import WatchdogConfig
from repro.errors import UseAfterFreeError
from repro.isa.registers import int_reg, parse_reg
from repro.program.builder import ProgramBuilder
from repro.program.machine import Machine


class TestBasicExecution:
    def test_benign_program_runs_clean(self, uaf_config):
        result = Machine(uaf_config).run(build_benign_program())
        assert not result.detected
        assert result.registers.read(parse_reg("r9")) == 42

    def test_arithmetic_semantics(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.mov_imm("r1", 10).mov_imm("r2", 3)
            main.add("r3", "r1", "r2")
            main.mul("r4", "r1", "r2")
            main.sub_imm("r5", "r1", 4)
            main.xor("r6", "r1", "r1")
        result = Machine(uaf_config).run(builder.build())
        regs = result.registers
        assert regs.read(parse_reg("r3")) == 13
        assert regs.read(parse_reg("r4")) == 30
        assert regs.read(parse_reg("r5")) == 6
        assert regs.read(parse_reg("r6")) == 0

    def test_store_load_roundtrip_through_memory(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.mov_imm("r8", 0xABCD)
            main.store("r1", "r8", 16)
            main.load("r9", "r1", 16)
        result = Machine(uaf_config).run(builder.build())
        assert result.registers.read(parse_reg("r9")) == 0xABCD

    def test_subword_store_load(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.mov_imm("r8", 0x1FF)
            main.store("r1", "r8", 0, size=1)
            main.load("r9", "r1", 0, size=1)
        result = Machine(uaf_config).run(builder.build())
        assert result.registers.read(parse_reg("r9")) == 0xFF

    def test_function_call_and_return(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("callee") as callee:
            callee.mov_imm("r9", 123)
            callee.ret()
        with builder.function("main") as main:
            main.call("callee")
            main.mov_imm("r10", 1)
        result = Machine(uaf_config).run(builder.build())
        assert result.registers.read(parse_reg("r9")) == 123
        assert result.registers.read(parse_reg("r10")) == 1

    def test_execution_counters(self, uaf_config):
        result = Machine(uaf_config).run(build_benign_program())
        assert result.instructions_executed >= 5
        assert result.uops_executed > result.instructions_executed


class TestDetection:
    def test_heap_uaf_detected(self, uaf_config):
        result = Machine(uaf_config).run(build_uaf_program())
        assert result.detected
        assert result.violation_kind == "use-after-free"

    def test_uaf_detected_under_conservative_identification(self, conservative_config):
        result = Machine(conservative_config).run(build_uaf_program())
        assert result.detected

    def test_uaf_detected_with_bounds_configs(self, bounds_config):
        result = Machine(bounds_config).run(build_uaf_program())
        assert result.detected

    def test_uaf_not_detected_when_disabled(self, disabled_config):
        result = Machine(disabled_config).run(build_uaf_program())
        assert not result.detected

    def test_raise_on_violation_propagates(self, uaf_config):
        with pytest.raises(UseAfterFreeError):
            Machine(uaf_config).run(build_uaf_program(), raise_on_violation=True)

    def test_pointer_spilled_to_memory_still_checked(self, uaf_config):
        """The shadow-space path (§3.3): metadata survives a spill/reload."""
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 64)
            main.malloc("r2", 64)
            main.store_ptr("r2", "r1", 0)
            main.free("r1")
            main.load_ptr("r3", "r2", 0)
            main.load("r9", "r3", 0)
        result = Machine(uaf_config).run(builder.build())
        assert result.detected

    def test_stack_uaf_detected_after_return(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("foo") as foo:
            foo.stack_alloc("r1", 16)
            foo.ret()
        with builder.function("main") as main:
            main.call("foo")
            main.load("r9", "r1", 0)
        result = Machine(uaf_config).run(builder.build())
        assert result.detected

    def test_buffer_overflow_detected_only_with_bounds(self, uaf_config, bounds_config):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.malloc("r1", 32)
            main.mov_imm("r8", 7)
            main.store("r1", "r8", 40)     # 8 bytes past the end
        program = builder.build()
        assert not Machine(uaf_config).run(program).detected
        result = Machine(bounds_config).run(program).violation_kind
        assert result == "out-of-bounds"

    def test_global_pointers_always_pass(self, uaf_config):
        builder = ProgramBuilder()
        with builder.function("main") as main:
            main.global_addr("r1", 0)
            main.mov_imm("r8", 9)
            main.store("r1", "r8", 0)
            main.load("r9", "r1", 0)
        result = Machine(uaf_config).run(builder.build())
        assert not result.detected

    def test_violation_records_faulting_address(self, uaf_config):
        result = Machine(uaf_config).run(build_uaf_program())
        assert result.violation is not None
        assert result.violation.address is not None


class TestTraceRecording:
    def test_trace_recorded_when_requested(self, uaf_config):
        machine = Machine(uaf_config, record_trace=True)
        result = machine.run(build_benign_program())
        assert result.trace
        memory_ops = [d for d in result.trace if d.instruction.is_memory]
        assert all(d.address is not None for d in memory_ops)
        assert any(d.lock_address is not None for d in memory_ops)

    def test_trace_not_recorded_by_default(self, uaf_config):
        result = Machine(uaf_config).run(build_benign_program())
        assert result.trace == []
