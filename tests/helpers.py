"""Shared program builders for the test suite.

Importable as :mod:`tests.helpers` — test modules must not import from
``conftest`` (two conftest modules in one session shadow each other).
"""

from repro.program.builder import ProgramBuilder


def build_uaf_program():
    """The Figure 1 (left) heap use-after-free program."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)
        main.mov("r2", "r1")
        main.free("r1")
        main.malloc("r3", 64)
        main.load("r4", "r2")
    return builder.build()


def build_benign_program():
    """A correct program: allocate, use, free."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 64)
        main.mov_imm("r8", 42)
        main.store("r1", "r8", 8)
        main.load("r9", "r1", 8)
        main.free("r1")
    return builder.build()
