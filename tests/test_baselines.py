"""Tests for the baseline checkers and the Table 1 comparison harness."""

import pytest

from repro.baselines.comparison import (
    ComparisonHarness,
    EventKind,
    MemoryEvent,
    cast_corruption_scenario,
    reallocation_scenario,
    standard_scenarios,
)
from repro.baselines.location_based import LocationBasedChecker
from repro.baselines.sw_identifier import (
    DisjointIdentifierChecker,
    InlineIdentifierChecker,
)


class TestLocationBasedChecker:
    def test_access_to_allocated_memory_passes(self):
        checker = LocationBasedChecker()
        checker.on_alloc(0x1000, 64)
        assert checker.check_access(0x1010)

    def test_access_after_free_fails(self):
        checker = LocationBasedChecker()
        checker.on_alloc(0x1000, 64)
        checker.on_free(0x1000, 64)
        assert not checker.check_access(0x1010)

    def test_reallocation_masks_the_error(self):
        """The fundamental §2.1 limitation this baseline exists to show."""
        checker = LocationBasedChecker()
        checker.on_alloc(0x1000, 64)
        checker.on_free(0x1000, 64)
        checker.on_alloc(0x1000, 64)     # reuse
        assert checker.check_access(0x1010)   # dangling access passes (missed)

    def test_partial_overlap_detected(self):
        checker = LocationBasedChecker()
        checker.on_alloc(0x1000, 16)
        assert not checker.check_access(0x1010, 8)

    def test_stats(self):
        checker = LocationBasedChecker()
        checker.on_alloc(0x1000, 8)
        checker.check_access(0x1000)
        checker.check_access(0x2000)
        assert checker.stats.accesses == 2
        assert checker.stats.violations == 1


class TestIdentifierCheckers:
    def _uaf_after_realloc(self, checker):
        key = checker.on_alloc(1, 64)
        checker.on_pointer_created("p", 1, key)
        checker.on_free(1)
        key2 = checker.on_alloc(2, 64)
        checker.on_pointer_created("q", 2, key2)
        return checker.check_access("p")

    def test_disjoint_checker_detects_uaf_after_realloc(self):
        assert not self._uaf_after_realloc(DisjointIdentifierChecker())

    def test_inline_checker_detects_uaf_after_realloc(self):
        assert not self._uaf_after_realloc(InlineIdentifierChecker())

    def test_pointer_copy_shares_metadata(self):
        checker = DisjointIdentifierChecker()
        key = checker.on_alloc(1, 64)
        checker.on_pointer_created("p", 1, key)
        checker.on_pointer_copied("p", "q")
        checker.on_free(1)
        assert not checker.check_access("q")

    def test_cast_destroys_inline_metadata_only(self):
        inline = InlineIdentifierChecker()
        disjoint = DisjointIdentifierChecker()
        for checker in (inline, disjoint):
            key = checker.on_alloc(1, 64)
            checker.on_pointer_created("p", 1, key)
            checker.on_arbitrary_cast("p")
            checker.on_free(1)
        assert inline.check_access("p")          # silently passes: unsound
        assert not disjoint.check_access("p")    # still detected

    def test_representative_overheads_ordered(self):
        assert InlineIdentifierChecker.representative_overhead > \
            DisjointIdentifierChecker.representative_overhead


class TestComparisonHarness:
    def test_scenarios_contain_errors(self):
        for name, events in standard_scenarios().items():
            if name == "cast-control":
                continue
            assert any(e.is_error for e in events), name

    def test_reallocation_scenario_reuses_address(self):
        events = reallocation_scenario()
        allocs = [e for e in events if e.kind is EventKind.ALLOC]
        assert allocs[0].address == allocs[1].address

    def test_summaries_match_table1(self):
        harness = ComparisonHarness()
        rows = {summary.name: summary for summary in harness.summaries()}
        assert len(rows) == 11
        # Location-based approaches: cast-safe but not comprehensive.
        for name in ("MC", "JK", "LBA", "SProc", "MTrac"):
            assert rows[name].safe_with_casts and not rows[name].comprehensive
        # Inline-metadata identifier approaches: comprehensive but cast-unsafe.
        for name in ("SafeC", "P&F", "MSCC", "Chuang"):
            assert rows[name].comprehensive and not rows[name].safe_with_casts
        # Disjoint identifier approaches (CETS, Watchdog): both properties.
        for name in ("CETS", "Watchdog"):
            assert rows[name].comprehensive and rows[name].safe_with_casts

    def test_watchdog_summary_is_hardware_disjoint(self):
        summary = ComparisonHarness().watchdog_summary()
        assert summary.instrumentation == "H/W"
        assert summary.metadata.lower() == "disjoint"

    def test_format_table_lists_all_approaches(self):
        table = ComparisonHarness().format_table()
        for name in ("MC", "CETS", "Watchdog"):
            assert name in table
