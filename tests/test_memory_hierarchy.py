"""Tests for the Table 2 memory hierarchy."""

import pytest

from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy, PortKind


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


class TestLatencies:
    def test_l1_hit_latency(self, hierarchy):
        hierarchy.access(0x1000)
        assert hierarchy.access(0x1000) == hierarchy.config.l1d.hit_latency

    def test_cold_miss_costs_more_than_l1_hit(self, hierarchy):
        cold = hierarchy.access(0x200000)
        warm = hierarchy.access(0x200000)
        assert cold > warm

    def test_dram_latency_included_on_cold_miss(self, hierarchy):
        latency = hierarchy.access(0x900000)
        assert latency >= hierarchy.config.dram_latency

    def test_l3_is_inclusive_of_demand_accesses(self, hierarchy):
        hierarchy.access(0x4000)
        assert hierarchy.l3.probe(0x4000)


class TestLockCache:
    def test_lock_port_uses_lock_cache_when_enabled(self, hierarchy):
        hierarchy.access(0x5000, port=PortKind.LOCK)
        assert hierarchy.lock_cache.accesses == 1
        assert hierarchy.l1d.accesses == 0

    def test_lock_port_uses_data_cache_when_disabled(self):
        config = HierarchyConfig(lock_cache_enabled=False)
        hierarchy = MemoryHierarchy(config)
        hierarchy.access(0x5000, port=PortKind.LOCK)
        assert hierarchy.lock_cache.accesses == 0
        assert hierarchy.l1d.accesses == 1

    def test_lock_cache_hit_is_cheap(self, hierarchy):
        hierarchy.access(0x5000, port=PortKind.LOCK)
        assert hierarchy.access(0x5000, port=PortKind.LOCK) == \
            hierarchy.config.lock_cache.hit_latency

    def test_lock_cache_mpki(self, hierarchy):
        hierarchy.access(0x5000, port=PortKind.LOCK)
        assert hierarchy.lock_cache_mpki(1000) == pytest.approx(1.0)
        assert hierarchy.lock_cache_mpki(0) == 0.0


class TestShadowAccesses:
    def test_ideal_shadow_never_misses(self):
        config = HierarchyConfig(ideal_shadow=True)
        hierarchy = MemoryHierarchy(config)
        first = hierarchy.access(1 << 47, port=PortKind.SHADOW)
        assert first == config.l1d.hit_latency
        assert hierarchy.l1d.accesses == 0

    def test_real_shadow_uses_data_cache(self, hierarchy):
        hierarchy.access(1 << 47, port=PortKind.SHADOW)
        assert hierarchy.l1d.accesses == 1
        assert "shadow" in hierarchy.stats.accesses


class TestStats:
    def test_stats_record_by_class(self, hierarchy):
        hierarchy.access(0x1000, port=PortKind.DATA)
        hierarchy.access(0x2000, port=PortKind.LOCK)
        assert hierarchy.stats.accesses["data"] == 1
        assert hierarchy.stats.accesses["lock"] == 1

    def test_average_latency(self, hierarchy):
        hierarchy.access(0x1000)
        hierarchy.access(0x1000)
        assert hierarchy.stats.average_latency("data") > 0
        assert hierarchy.stats.average_latency("absent") == 0.0

    def test_reset_stats_clears_counts_but_not_contents(self, hierarchy):
        hierarchy.access(0x1000)
        hierarchy.reset_stats()
        assert hierarchy.l1d.accesses == 0
        assert hierarchy.access(0x1000) == hierarchy.config.l1d.hit_latency
