"""Tests for streaming sampled simulation (one sample in memory).

Covers the :class:`~repro.workloads.streaming.SampleStream` walk against the
eagerly-built bundle (segment-for-segment bit-equality), the
replay-on-demand property (a random single sample regenerated from the state
core alone equals the eager bundle's, native fast-forward kernel on and
off), streaming-vs-retained golden equality through
:meth:`Simulator.run_profile` and the sweep engine (serial and pooled,
timecore on and off), the incremental :class:`OutcomeAccumulator` against
:func:`aggregate_outcomes`, the state core's retired-slot compaction
(bit-invisible on every span path), the audited bundle footprint
accounting, and the billion-instruction profile/bench plumbing.
"""

import random
import zlib

import pytest

from repro.core.config import WatchdogConfig
from repro.errors import ConfigurationError
from repro.sim.sampling import SamplingConfig, SamplingSchedule
from repro.sim.simulator import (
    OutcomeAccumulator,
    Simulator,
    aggregate_outcomes,
)
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import (
    ONE_B_HORIZON_INSTRUCTIONS,
    benchmark_names,
    one_b_profile_names,
    profile_by_name,
)
from repro.workloads.streaming import (
    STREAMING_THRESHOLD_INSTRUCTIONS,
    SampleStream,
    use_streaming,
)
from repro.workloads.synthetic import SyntheticWorkload

ISA = WatchdogConfig.isa_assisted_uaf()

#: A schedule that genuinely samples the suite's short synthetic traces.
SMALL = SamplingConfig(fast_forward=2000, warmup=500, sample=1500)


def _segment_digest(segment) -> int:
    """A stream digest of one sample (warm-up + measured op streams)."""
    digest = 0
    for op in segment.warmup:
        digest = zlib.crc32(repr(op).encode(), digest)
    for op in segment.measured:
        digest = zlib.crc32(repr(op).encode(), digest)
    return digest


def _assert_segments_equal(left, right):
    assert left.measured == right.measured
    assert left.warmup == right.warmup
    assert left.working_set.lines == right.working_set.lines
    assert left.working_set.locks == right.working_set.locks
    assert _segment_digest(left) == _segment_digest(right)


@pytest.fixture
def ffcore_disabled(monkeypatch):
    """Force the pure-Python fast-forward span loop for one test."""
    from repro.native import build

    monkeypatch.setenv("REPRO_FFCORE", "0")
    build.forget("ffcore")
    yield
    build.forget("ffcore")


class TestSampleStream:
    def test_segments_match_eager_bundle(self):
        for benchmark, seed in (("mcf-long", 7), ("perl", 3)):
            bundle = TraceBundle.generate(benchmark, seed=seed,
                                          instructions=20_000, sampling=SMALL)
            stream = SampleStream(benchmark, seed, 20_000, SMALL)
            segments = list(stream.segments())
            assert len(segments) == len(stream) == len(bundle.samples)
            for streamed, eager in zip(segments, bundle.samples):
                _assert_segments_equal(streamed, eager)

    def test_rejects_schedules_that_cannot_stream(self):
        with pytest.raises(ConfigurationError):
            SampleStream("mcf", 0, 10_000, SamplingConfig.unsampled(10_000))
        with pytest.raises(ConfigurationError):
            # Measures nothing at this horizon: one incomplete period.
            SampleStream("mcf", 0, 1_000, SMALL)

    def test_segment_index_bounds(self):
        stream = SampleStream("mcf-long", 7, 20_000, SMALL)
        with pytest.raises(IndexError):
            stream.segment(len(stream))
        with pytest.raises(IndexError):
            stream.segment(-1)

    def test_segment_bundle_is_single_sample(self):
        stream = SampleStream("mcf-long", 7, 20_000, SMALL)
        segment = next(iter(stream.segments()))
        bundle = stream.segment_bundle(segment)
        assert bundle.samples == (segment,)
        assert bundle.benchmark == "mcf-long"
        assert bundle.measured == () and bundle.warmup == ()
        assert bundle.sampling == SMALL


class TestReplayOnDemand:
    """Regenerating one random sample from the state core is bit-identical."""

    def _check_profiles(self, cases):
        rng = random.Random(0x5EED)
        for benchmark, instructions, sampling in cases:
            bundle = TraceBundle.generate(benchmark, seed=11,
                                          instructions=instructions,
                                          sampling=sampling)
            stream = SampleStream(benchmark, 11, instructions, sampling)
            assert len(stream) == len(bundle.samples)
            index = rng.randrange(len(stream))
            _assert_segments_equal(stream.segment(index),
                                   bundle.samples[index])

    def test_long_and_paper_profiles_native(self):
        self._check_profiles([
            ("mcf-long", 300_000, SamplingConfig.quick()),
            ("gcc-long", 300_000, SamplingConfig.quick()),
            ("lbm-long", 300_000, SamplingConfig.quick()),
            ("perl-long", 300_000, SamplingConfig.quick()),
            ("mcf-paper", 1_000_000, SamplingConfig.paper_scaled(250_000)),
            ("gcc-paper", 1_000_000, SamplingConfig.paper_scaled(250_000)),
        ])

    def test_long_profiles_python_fallback(self, ffcore_disabled):
        self._check_profiles([
            ("mcf-long", 120_000, SamplingConfig.quick()),
            ("perl-long", 120_000, SamplingConfig.quick()),
        ])

    def test_first_and_last_samples(self):
        # Edge windows: the first sample (nothing precedes its warm-up but a
        # skip) and the last (stream ends at its measure window boundary).
        bundle = TraceBundle.generate("gcc-long", seed=5,
                                      instructions=40_000, sampling=SMALL)
        stream = SampleStream("gcc-long", 5, 40_000, SMALL)
        _assert_segments_equal(stream.segment(0), bundle.samples[0])
        last = len(bundle.samples) - 1
        _assert_segments_equal(stream.segment(last), bundle.samples[last])


def _outcome_key(outcome):
    return (outcome.benchmark, outcome.configuration, outcome.timing,
            outcome.injection, outcome.pointer_stats,
            outcome.pages.data_words, outcome.pages.shadow_words)


class TestStreamingGoldenEquality:
    @pytest.mark.parametrize("timecore", [None, False])
    def test_run_profile_streaming_equals_retained(self, monkeypatch,
                                                   timecore):
        profile = profile_by_name("mcf-long")
        for config in (WatchdogConfig.disabled(), ISA):
            monkeypatch.setenv("REPRO_STREAMING", "0")
            retained = Simulator(timecore=timecore).run_profile(
                profile, config, instructions=20_000, seed=7, sampling=SMALL)
            monkeypatch.setenv("REPRO_STREAMING", "1")
            streamed = Simulator(timecore=timecore).run_profile(
                profile, config, instructions=20_000, seed=7, sampling=SMALL)
            assert _outcome_key(streamed) == _outcome_key(retained)

    def test_run_streaming_equals_run_bundle(self):
        bundle = TraceBundle.generate("gcc-long", seed=3,
                                      instructions=20_000, sampling=SMALL)
        simulator = Simulator()
        retained = simulator.run_bundle(bundle, ISA)
        streamed = simulator.run_streaming("gcc-long", ISA,
                                           instructions=20_000,
                                           sampling=SMALL, seed=3)
        assert _outcome_key(streamed) == _outcome_key(retained)

    def test_reference_pipeline_streams_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMING", "1")
        streamed = Simulator(pipeline="reference").run_profile(
            profile_by_name("mcf-long"), ISA, instructions=20_000, seed=7,
            sampling=SMALL)
        monkeypatch.setenv("REPRO_STREAMING", "0")
        retained = Simulator(pipeline="compiled").run_profile(
            profile_by_name("mcf-long"), ISA, instructions=20_000, seed=7,
            sampling=SMALL)
        assert _outcome_key(streamed) == _outcome_key(retained)


class TestEngineStreaming:
    def _job(self):
        from repro.sim.engine import BenchmarkJob

        return BenchmarkJob(
            benchmark="mcf-long", seed=7, instructions=20_000,
            warmup_instructions=None, sampling=SMALL, pipeline="compiled",
            cells=(("baseline", WatchdogConfig.disabled()), ("isa", ISA)))

    def test_serial_streaming_matches_retained(self, monkeypatch):
        from repro.sim.engine import execute_job

        monkeypatch.setenv("REPRO_STREAMING", "0")
        retained = execute_job(self._job())
        monkeypatch.setenv("REPRO_STREAMING", "1")
        streamed = execute_job(self._job())
        assert streamed == retained

    def test_pooled_streaming_matches_serial(self, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        from repro.sim.engine import execute_job

        monkeypatch.setenv("REPRO_STREAMING", "1")
        serial = execute_job(self._job())
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = execute_job(self._job(), sample_pool=pool)
        assert pooled == serial

    def test_sweep_round_trip_forced_streaming(self, monkeypatch):
        from repro.sim.engine import SweepEngine
        from repro.sim.spec import ExperimentSettings, ExperimentSpec

        settings = ExperimentSettings(benchmarks=("mcf-long",),
                                      instructions=20_000, sampling=SMALL)
        spec = ExperimentSpec.build("stream", {"wd": ISA}, settings=settings)
        monkeypatch.setenv("REPRO_STREAMING", "0")
        retained = SweepEngine().run_spec(spec)
        monkeypatch.setenv("REPRO_STREAMING", "1")
        streamed = SweepEngine().run_spec(spec)
        assert streamed == retained


class TestOutcomeAccumulator:
    def test_matches_aggregate_outcomes_exactly(self):
        bundle = TraceBundle.generate("mcf-long", seed=7,
                                      instructions=20_000, sampling=SMALL)
        simulator = Simulator()
        outcomes = simulator.sample_outcomes(bundle, ISA)
        accumulator = OutcomeAccumulator()
        for outcome in outcomes:
            accumulator.add(outcome)
        assert len(accumulator) == len(outcomes)
        folded = accumulator.finalize()
        reference = aggregate_outcomes(outcomes)
        assert folded.timing == reference.timing
        # Port waits are floats: the streaming fold must be *equal*, not
        # merely close — same expression, same iteration order.
        assert folded.timing.port_waits == reference.timing.port_waits
        assert folded.injection == reference.injection
        assert folded.pointer_stats == reference.pointer_stats
        assert folded.pages.data_words == reference.pages.data_words
        assert folded.pages.shadow_words == reference.pages.shadow_words
        assert (folded.benchmark, folded.configuration) == \
            (reference.benchmark, reference.configuration)

    def test_empty_accumulator_refuses_finalize(self):
        with pytest.raises(ValueError):
            OutcomeAccumulator().finalize()


class TestSlotCompaction:
    """Compacting retired slot arrays must be invisible to the trace."""

    def _pair(self, name, seed, threshold=4):
        reference = SyntheticWorkload(profile_by_name(name), seed=seed)
        compacted = SyntheticWorkload(profile_by_name(name), seed=seed)
        compacted.COMPACT_RETIRED_SLOTS = threshold
        return reference, compacted

    def _assert_converged(self, reference, compacted):
        assert reference.rng.getstate() == compacted.rng.getstate()
        ref_snap = reference.snapshot_working_set()
        cmp_snap = compacted.snapshot_working_set()
        assert ref_snap.lines == cmp_snap.lines
        assert ref_snap.locks == cmp_snap.locks
        # Compaction genuinely fired: the compacted core retired its dead
        # slots while the reference kept appending.
        assert len(compacted._slot_sizes) < len(reference._slot_sizes)
        assert len(compacted._slot_sizes) - len(compacted._order) \
            < compacted.COMPACT_RETIRED_SLOTS + 2

    def test_emit_path(self):
        reference, compacted = self._pair("perl", 3)
        assert reference.emit(60_000) == compacted.emit(60_000)
        self._assert_converged(reference, compacted)

    def test_fast_forward_native_span(self):
        reference, compacted = self._pair("perl", 9)
        for _ in range(6):
            reference.fast_forward(9_000)
            compacted.fast_forward(9_000)
            assert reference.emit(1_000) == compacted.emit(1_000)
        self._assert_converged(reference, compacted)

    def test_fast_forward_python_span(self, ffcore_disabled):
        reference, compacted = self._pair("perl", 11)
        for _ in range(4):
            reference.fast_forward(6_000)
            compacted.fast_forward(6_000)
            assert reference.emit(800) == compacted.emit(800)
        self._assert_converged(reference, compacted)

    def test_pickle_round_trip_after_compaction(self):
        import pickle

        _, compacted = self._pair("perl", 5)
        compacted.fast_forward(20_000)
        clone = pickle.loads(pickle.dumps(compacted))
        assert clone.emit(2_000) == compacted.emit(2_000)


class TestFootprintAudit:
    def test_materialized_tuples_are_budgeted(self):
        bundle = TraceBundle.generate("mcf", seed=7, instructions=3_000)
        streams = bundle.compiled_streams(ISA)
        before = bundle.footprint_ops()
        # Force the Python-fallback tuple materialization the footprint
        # previously missed.
        tuples = streams.measured.uops
        assert bundle.footprint_ops() == before + 8 * len(tuples)

    def test_tuple_only_stream_is_budgeted(self):
        import dataclasses as dc

        bundle = TraceBundle.generate("mcf", seed=7, instructions=3_000)
        streams = bundle.compiled_streams(ISA)
        cache = bundle.__dict__["_cc_streams"]
        (key, built), = list(cache.items())
        base = bundle.footprint_ops()  # flat stream, no tuples pinned yet
        # Rebuild the cached stream as tuple-only (words=None, tuples
        # pinned), as a packed-width overflow at compile time would have
        # produced it.  ``len(stream)`` falls back to the tuple list, so the
        # per-µop column charge is unchanged; the pinned tuples add 8/µop.
        tuples = tuple(built.measured.uops)
        tuple_only = dc.replace(built.measured, words=None)
        tuple_only.__dict__["_uop_tuples"] = tuples
        cache[key] = dc.replace(built, measured=tuple_only)
        assert bundle.footprint_ops() == base + 8 * len(tuples)


class TestUseStreaming:
    def test_threshold_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAMING", raising=False)
        assert not use_streaming(20_000, SMALL)
        assert use_streaming(STREAMING_THRESHOLD_INSTRUCTIONS + 1, SMALL)
        assert not use_streaming(STREAMING_THRESHOLD_INSTRUCTIONS + 1, None)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMING", "1")
        assert use_streaming(20_000, SMALL)
        monkeypatch.setenv("REPRO_STREAMING", "0")
        assert not use_streaming(100_000_000, SMALL)

    def test_degenerate_schedules_never_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMING", "1")
        assert not use_streaming(20_000, SamplingConfig.unsampled(20_000))
        assert not use_streaming(1_000, SMALL)  # measures nothing


class TestOneBPlumbing:
    def test_profiles_registered_but_not_in_figure_grids(self):
        names = one_b_profile_names()
        assert names == ["mcf-1b", "gcc-1b", "lbm-1b", "perl-1b"]
        for name in names:
            assert profile_by_name(name).name == name
            assert name not in benchmark_names()
        assert ONE_B_HORIZON_INSTRUCTIONS == 1_000_000_000

    def test_one_b_cell_smoke_scale(self):
        # The real cell runs the full 1B horizon under `repro bench`; here
        # the same code path runs at test scale.
        from repro.sim.bench import run_one_b_cell

        record = run_one_b_cell(benchmark="mcf-1b", instructions=60_000,
                                sampling=SMALL, seed=7)
        assert record["streaming"] is True
        assert record["samples"] == len(
            SampleStream("mcf-1b", 7, 60_000, SMALL))
        assert record["measured_instructions"] == \
            SamplingSchedule(SMALL).measured_count(60_000)
        assert record["timed_uops"] > 0
        assert record["one_b_ops_per_sec"] > 0

    def test_peak_rss_recorded_on_linux(self):
        import sys

        from repro.sim.bench import peak_rss_mb

        rss = peak_rss_mb()
        if sys.platform.startswith(("linux", "darwin")):
            assert rss is not None and rss > 0

    def test_ceiling_gate(self, tmp_path):
        import json

        from repro.sim.bench import check_against_baseline

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"uops_per_sec": 1, "one_b_peak_rss_mb": 100}))
        record = {"compiled": {"uops_per_sec": 10_000},
                  "one_b": {"peak_rss_mb": 50.0}}
        ok, message = check_against_baseline(record, str(baseline))
        assert ok and "one_b_rss" in message and "ceiling" in message
        record["one_b"]["peak_rss_mb"] = 150.0
        ok, message = check_against_baseline(record, str(baseline))
        assert not ok and "EXCEEDED" in message
        record["one_b"]["peak_rss_mb"] = None
        ok, message = check_against_baseline(record, str(baseline))
        assert ok and "SKIPPED" in message
        del record["one_b"]
        ok, message = check_against_baseline(record, str(baseline))
        assert ok and "SKIPPED" in message
