"""Tests for per-pointer metadata."""

import pytest

from repro.core.identifier import Identifier
from repro.core.metadata import (
    METADATA_WORDS_FULL,
    METADATA_WORDS_UAF,
    PointerMetadata,
)
from repro.errors import ProgramError


@pytest.fixture
def ident():
    return Identifier(key=7, lock=0x6000_0000)


class TestConstruction:
    def test_identifier_only(self, ident):
        metadata = PointerMetadata(identifier=ident)
        assert not metadata.has_bounds
        assert metadata.size_words == METADATA_WORDS_UAF

    def test_with_bounds(self, ident):
        metadata = PointerMetadata(identifier=ident, base=0x100, bound=0x200)
        assert metadata.has_bounds
        assert metadata.size_words == METADATA_WORDS_FULL

    def test_partial_bounds_rejected(self, ident):
        with pytest.raises(ProgramError):
            PointerMetadata(identifier=ident, base=0x100, bound=None)

    def test_inverted_bounds_rejected(self, ident):
        with pytest.raises(ProgramError):
            PointerMetadata(identifier=ident, base=0x200, bound=0x100)

    def test_for_allocation_helper(self, ident):
        metadata = PointerMetadata.for_allocation(ident, base=0x1000, size=64)
        assert metadata.base == 0x1000 and metadata.bound == 0x1040
        plain = PointerMetadata.for_allocation(ident, 0x1000, 64, with_bounds=False)
        assert not plain.has_bounds


class TestBoundsCheck:
    def test_in_bounds_access(self, ident):
        metadata = PointerMetadata(identifier=ident, base=0x100, bound=0x140)
        assert metadata.contains(0x100, 8)
        assert metadata.contains(0x138, 8)

    def test_out_of_bounds_access(self, ident):
        metadata = PointerMetadata(identifier=ident, base=0x100, bound=0x140)
        assert not metadata.contains(0x140, 1)
        assert not metadata.contains(0xFF, 1)
        assert not metadata.contains(0x13C, 8)

    def test_byte_granularity(self, ident):
        """§8: bounds checking is byte granular."""
        metadata = PointerMetadata(identifier=ident, base=0x100, bound=0x101)
        assert metadata.contains(0x100, 1)
        assert not metadata.contains(0x100, 2)

    def test_no_bounds_always_contains(self, ident):
        metadata = PointerMetadata(identifier=ident)
        assert metadata.contains(0xDEAD_BEEF, 8)

    def test_with_bounds_copy(self, ident):
        metadata = PointerMetadata(identifier=ident).with_bounds(0x10, 0x20)
        assert metadata.has_bounds
        assert metadata.identifier == ident

    def test_str_rendering(self, ident):
        assert "key=7" in str(PointerMetadata(identifier=ident))
        assert "base" in str(PointerMetadata(identifier=ident, base=0, bound=8))
