"""Test suite package.

Being a package (rather than a loose directory) gives the test modules a
unique import namespace, so ``tests/conftest.py`` and
``benchmarks/conftest.py`` can coexist in one pytest session instead of
colliding on the top-level module name ``conftest``.
"""
