"""Tests for the macro instruction set."""

import pytest

from repro.errors import ProgramError
from repro.isa.instructions import (
    AccessSize,
    Instruction,
    NON_POINTER_PRODUCERS,
    Opcode,
    PointerHint,
    SELECT_PROPAGATORS,
    SINGLE_SOURCE_PROPAGATORS,
    is_load_opcode,
    is_memory_opcode,
    is_store_opcode,
)
from repro.isa.registers import fp_reg, int_reg


class TestOpcodeClasses:
    def test_load_store_classification(self):
        assert is_load_opcode(Opcode.LOAD)
        assert is_load_opcode(Opcode.FLOAD)
        assert is_store_opcode(Opcode.STORE)
        assert not is_load_opcode(Opcode.STORE)
        assert is_memory_opcode(Opcode.FSTORE)
        assert not is_memory_opcode(Opcode.ADD_RR)

    def test_propagation_classes_are_disjoint(self):
        assert not (SINGLE_SOURCE_PROPAGATORS & SELECT_PROPAGATORS)
        assert not (SINGLE_SOURCE_PROPAGATORS & NON_POINTER_PRODUCERS)

    def test_mul_and_div_never_produce_pointers(self):
        assert Opcode.MUL_RR in NON_POINTER_PRODUCERS
        assert Opcode.DIV_RR in NON_POINTER_PRODUCERS

    def test_add_immediate_propagates_metadata(self):
        assert Opcode.ADD_RI in SINGLE_SOURCE_PROPAGATORS

    def test_two_source_add_requires_select(self):
        assert Opcode.ADD_RR in SELECT_PROPAGATORS


class TestInstructionValidation:
    def test_load_requires_destination(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.LOAD, srcs=(int_reg(1),))

    def test_store_requires_two_sources(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.STORE, srcs=(int_reg(1),))

    def test_setident_requires_two_sources(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.SETIDENT, srcs=(int_reg(1),))

    def test_getident_requires_dest_and_source(self):
        with pytest.raises(ProgramError):
            Instruction(Opcode.GETIDENT, srcs=(int_reg(1),))

    def test_srcs_normalised_to_tuple(self):
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(1),
                           srcs=[int_reg(2), int_reg(3)])
        assert isinstance(inst.srcs, tuple)


class TestPointerCarrying:
    def test_word_integer_load_may_carry_pointer(self):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           size=AccessSize.WORD64)
        assert inst.may_carry_pointer

    def test_subword_load_cannot_carry_pointer(self):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),),
                           size=AccessSize.WORD32)
        assert not inst.may_carry_pointer

    def test_fp_load_cannot_carry_pointer(self):
        inst = Instruction(Opcode.FLOAD, dest=fp_reg(1), srcs=(int_reg(2),))
        assert not inst.may_carry_pointer

    def test_non_memory_instruction_cannot_carry_pointer(self):
        inst = Instruction(Opcode.ADD_RR, dest=int_reg(1),
                           srcs=(int_reg(2), int_reg(3)))
        assert not inst.may_carry_pointer

    def test_address_register_is_first_source(self):
        inst = Instruction(Opcode.STORE, srcs=(int_reg(4), int_reg(5)))
        assert inst.address_reg == int_reg(4)

    def test_default_hint_is_unknown(self):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        assert inst.pointer_hint is PointerHint.UNKNOWN

    def test_str_contains_opcode_and_registers(self):
        inst = Instruction(Opcode.ADD_RI, dest=int_reg(1), srcs=(int_reg(2),), imm=8)
        text = str(inst)
        assert "add_ri" in text and "r1" in text and "r2" in text and "#8" in text
