"""End-to-end integration tests spanning multiple subsystems."""

import pytest

from repro.core.config import WatchdogConfig
from repro.pipeline.core import OutOfOrderCore
from repro.program.builder import ProgramBuilder
from repro.program.compiler import annotate_pointer_hints
from repro.program.machine import Machine
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceExpander
from repro.workloads.juliet import JulietSuite


def linked_list_program(nodes=6, corrupt=False):
    """Build, walk and free a linked list; optionally walk it after freeing
    one interior node (a realistic use-after-free)."""
    builder = ProgramBuilder()
    with builder.function("main") as main:
        main.malloc("r1", 32)                      # head
        main.mov("r4", "r1")                       # cursor for construction
        for _ in range(nodes - 1):
            main.malloc("r5", 32)                  # new node
            main.store("r4", "r5", 0)              # cursor->next = new
            main.mov_imm("r8", 7)
            main.store("r4", "r8", 8)              # cursor->value = 7
            main.mov("r4", "r5")
        main.mov_imm("r8", 7)
        main.store("r4", "r8", 8)
        main.mov_imm("r9", 0)
        main.store("r4", "r9", 0)                  # tail->next = NULL

        if corrupt:
            # Free the second node, then walk the list from the head.
            main.load("r6", "r1", 0)               # second = head->next
            main.free("r6")

        # Walk the list (unrolled) summing values.
        main.mov("r4", "r1")
        main.mov_imm("r10", 0)
        for _ in range(nodes):
            main.load("r11", "r4", 8)              # value
            main.add("r10", "r10", "r11")
            main.load("r4", "r4", 0)               # next
    return builder.build()


class TestLinkedListScenario:
    def test_clean_walk_passes_with_watchdog(self):
        program = linked_list_program()
        annotate_pointer_hints(program)
        result = Machine(WatchdogConfig.isa_assisted_uaf()).run(program)
        assert not result.detected

    def test_corrupted_walk_detected_with_watchdog(self):
        program = linked_list_program(corrupt=True)
        annotate_pointer_hints(program)
        result = Machine(WatchdogConfig.isa_assisted_uaf()).run(program)
        assert result.detected
        assert result.violation_kind == "use-after-free"

    def test_corrupted_walk_missed_without_watchdog(self):
        program = linked_list_program(corrupt=True)
        result = Machine(WatchdogConfig.disabled()).run(program)
        assert not result.detected

    def test_annotated_program_has_fewer_pointer_ops_but_same_detection(self):
        annotated = linked_list_program(corrupt=True)
        annotate_pointer_hints(annotated)
        plain = linked_list_program(corrupt=True)

        machine_annotated = Machine(WatchdogConfig.isa_assisted_uaf())
        machine_plain = Machine(WatchdogConfig.conservative_uaf())
        assert machine_annotated.run(annotated).detected
        assert machine_plain.run(plain).detected
        assert machine_annotated.watchdog.pointer_id_stats.pointer_ops <= \
            machine_plain.watchdog.pointer_id_stats.pointer_ops


class TestFunctionalTraceFeedsTimingModel:
    def test_program_trace_can_be_timed(self):
        program = linked_list_program()
        machine = Machine(WatchdogConfig.isa_assisted_uaf(), record_trace=True)
        result = machine.run(program)
        expander = TraceExpander(WatchdogConfig.isa_assisted_uaf())
        core = OutOfOrderCore(watchdog=WatchdogConfig.isa_assisted_uaf())
        timing = core.simulate(expander.expand(result.trace))
        assert timing.cycles > 0
        assert timing.injected_uops > 0

    def test_simulator_program_timing_overhead_positive(self):
        simulator = Simulator()
        program = linked_list_program(nodes=10)
        base = simulator.run_program(program, WatchdogConfig.disabled(), with_timing=True)
        wd = simulator.run_program(program, WatchdogConfig.conservative_uaf(),
                                   with_timing=True)
        assert wd.timing.total_uops > base.timing.total_uops


class TestJulietAcrossConfigurations:
    @pytest.mark.parametrize("config_factory", [
        WatchdogConfig.isa_assisted_uaf,
        WatchdogConfig.conservative_uaf,
        WatchdogConfig.full_safety_fused,
        WatchdogConfig.full_safety_two_uops,
    ])
    def test_every_configuration_detects_uaf_patterns(self, config_factory):
        config = config_factory()
        for case in JulietSuite(case_count=10).faulty_cases():
            result = Machine(config).run(case.program)
            assert result.detected, f"{case.name} under {config}"

    def test_detection_is_independent_of_lock_cache(self):
        """The lock location cache is a performance structure only (§4.2)."""
        for case in JulietSuite(case_count=5).faulty_cases():
            assert Machine(WatchdogConfig.no_lock_cache()).run(case.program).detected
