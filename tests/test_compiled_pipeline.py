"""Golden equivalence and determinism tests for the compiled trace pipeline.

The compiled pipeline (template-expanded packed streams + the array
scheduler) must be *bit-identical* to the reference object pipeline — same
``TimingResult`` including port-wait averages, same injection/pointer/page
statistics — across every benchmark profile and every Table 2 configuration.
These tests are the contract that lets the sweep engine run the fast path by
default.
"""

import pytest

from repro.core.config import WatchdogConfig
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import int_reg
from repro.pipeline.core import OutOfOrderCore
from repro.sim.compiled import stream_class_key
from repro.sim.results import CellResult
from repro.sim.simulator import Simulator
from repro.sim.trace import DynamicOp, TraceExpander
from repro.workloads.bundle import TraceBundle
from repro.workloads.profiles import benchmark_names

#: Every Watchdog configuration the Table 2 evaluation exercises.
CONFIGURATIONS = {
    "baseline": WatchdogConfig.disabled(),
    "conservative": WatchdogConfig.conservative_uaf(),
    "isa-assisted": WatchdogConfig.isa_assisted_uaf(),
    "no-lock-cache": WatchdogConfig.no_lock_cache(),
    "ideal-shadow": WatchdogConfig.idealized_shadow(),
    "bounds-fused": WatchdogConfig.full_safety_fused(),
    "bounds-2uop": WatchdogConfig.full_safety_two_uops(),
    "no-copy-elim": WatchdogConfig.isa_assisted_uaf().with_(
        copy_elimination=False),
}

INSTRUCTIONS = 600
SEED = 11


def outcomes_for(bundle, config):
    reference = Simulator(pipeline="reference").run_bundle(bundle, config)
    compiled = Simulator(pipeline="compiled").run_bundle(bundle, config)
    return reference, compiled


class TestGoldenEquivalence:
    """Compiled vs reference, every profile x every configuration."""

    @pytest.mark.parametrize("profile_name", benchmark_names())
    def test_profile_matches_reference_under_all_configurations(self, profile_name):
        bundle = TraceBundle.generate(profile_name, seed=SEED,
                                      instructions=INSTRUCTIONS)
        for label, config in CONFIGURATIONS.items():
            reference, compiled = outcomes_for(bundle, config)
            assert compiled.timing == reference.timing, \
                f"{profile_name}/{label}: timing diverged"
            assert CellResult.from_outcome(compiled, label=label) == \
                CellResult.from_outcome(reference, label=label), \
                f"{profile_name}/{label}: statistics diverged"

    def test_run_profile_matches_run_bundle(self):
        config = WatchdogConfig.isa_assisted_uaf()
        bundle = TraceBundle.generate("mcf", seed=3, instructions=900)
        simulator = Simulator()
        replayed = simulator.run_bundle(bundle, config)
        regenerated = simulator.run_benchmark("mcf", config,
                                              instructions=900, seed=3)
        assert replayed.timing == regenerated.timing

    def test_unsupported_shape_falls_back_to_reference(self):
        # Three register sources exceed the packed-stream operand slots; the
        # compiled path must fall back and still match the reference model.
        regs = (int_reg(1), int_reg(2), int_reg(3))
        trace = [DynamicOp(Instruction(Opcode.ADD_RR, dest=int_reg(4),
                                       srcs=regs))
                 for _ in range(20)]
        config = WatchdogConfig.isa_assisted_uaf()
        compiled = Simulator(pipeline="compiled").run_trace(list(trace), config)
        reference = Simulator(pipeline="reference").run_trace(list(trace), config)
        assert compiled.timing == reference.timing

    def test_unsupported_generator_trace_replays_in_full(self):
        # The unsupported instruction appears mid-generator: the fallback
        # must replay the whole trace, not the part after the failure point.
        def make_trace():
            good = Instruction(Opcode.ADD_RI, dest=int_reg(1),
                               srcs=(int_reg(1),), imm=1)
            bad = Instruction(Opcode.ADD_RR, dest=int_reg(4),
                              srcs=(int_reg(1), int_reg(2), int_reg(3)))
            for i in range(101):
                yield DynamicOp(bad if i == 50 else good)

        config = WatchdogConfig.isa_assisted_uaf()
        compiled = Simulator(pipeline="compiled").run_trace(make_trace(), config)
        reference = Simulator(pipeline="reference").run_trace(make_trace(), config)
        assert compiled.timing.macro_instructions == 101
        assert compiled.timing == reference.timing


class TestStreamCaching:
    """Per-class stream sharing and cross-configuration isolation."""

    def test_configurations_in_one_class_share_streams(self):
        bundle = TraceBundle.generate("gzip", seed=SEED, instructions=600)
        isa = bundle.compiled_streams(WatchdogConfig.isa_assisted_uaf())
        ideal = bundle.compiled_streams(WatchdogConfig.idealized_shadow())
        no_lock = bundle.compiled_streams(WatchdogConfig.no_lock_cache())
        assert isa is ideal is no_lock  # timing-only knobs share one stream
        conservative = bundle.compiled_streams(WatchdogConfig.conservative_uaf())
        assert conservative is not isa

    def test_class_key_separates_injection_behaviours(self):
        keys = {stream_class_key(config)
                for config in (WatchdogConfig.disabled(),
                               WatchdogConfig.conservative_uaf(),
                               WatchdogConfig.isa_assisted_uaf(),
                               WatchdogConfig.full_safety_two_uops(),
                               WatchdogConfig.isa_assisted_uaf().with_(
                                   copy_elimination=False))}
        assert len(keys) == 5
        assert stream_class_key(WatchdogConfig.isa_assisted_uaf()) == \
            stream_class_key(WatchdogConfig.idealized_shadow()) == \
            stream_class_key(WatchdogConfig.no_lock_cache())

    def test_cached_streams_never_leak_state_between_configs(self):
        # Interleave configurations sharing one cached stream and re-run the
        # first: every replay of (bundle, config) must be bit-identical.
        bundle = TraceBundle.generate("mcf", seed=SEED, instructions=600)
        simulator = Simulator(pipeline="compiled")
        first = simulator.run_bundle(bundle, WatchdogConfig.isa_assisted_uaf())
        simulator.run_bundle(bundle, WatchdogConfig.idealized_shadow())
        simulator.run_bundle(bundle, WatchdogConfig.no_lock_cache())
        simulator.run_bundle(bundle, WatchdogConfig.conservative_uaf())
        again = simulator.run_bundle(bundle, WatchdogConfig.isa_assisted_uaf())
        assert first.timing == again.timing
        assert first.timing.port_waits == again.timing.port_waits

    def test_repeated_scheduler_runs_do_not_mutate_the_stream(self):
        bundle = TraceBundle.generate("gzip", seed=SEED, instructions=600)
        config = WatchdogConfig.isa_assisted_uaf()
        streams = bundle.compiled_streams(config)
        results = []
        for _ in range(2):
            core = OutOfOrderCore(watchdog=config)
            from repro.sim.compiled import warm_trace, warm_working_set
            warm_working_set(core.hierarchy, streams.working_set, config)
            if streams.warm is not None:
                warm_trace(core.hierarchy, streams.warm, config)
            results.append(core.simulate_compiled(streams.measured))
        assert results[0] == results[1]

    def test_bundle_pickles_without_compiled_caches(self):
        import pickle

        bundle = TraceBundle.generate("gzip", seed=SEED, instructions=400)
        bundle.compiled_streams(WatchdogConfig.isa_assisted_uaf())
        clone = pickle.loads(pickle.dumps(bundle))
        assert clone.measured == bundle.measured
        assert "_cc_streams" not in clone.__dict__
        assert "_cc_tokens" not in clone.__dict__


class TestPipelineSelection:
    def test_invalid_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Simulator(pipeline="vectorized")

    def test_environment_variable_selects_pipeline(self, monkeypatch):
        monkeypatch.setenv("REPRO_PIPELINE", "reference")
        assert Simulator().pipeline == "reference"
        monkeypatch.delenv("REPRO_PIPELINE")
        assert Simulator().pipeline == "compiled"


class TestMacroCounting:
    """The macro-sequence stamp fix (id() reuse could merge distinct macros)."""

    def test_reexecuted_static_instruction_counts_per_dynamic_instance(self):
        # A machine-recorded trace reuses one Instruction object per dynamic
        # execution; id()-based dedup collapsed those into one macro.
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        trace = [DynamicOp(inst, address=0x2000_0000 + 64 * i,
                           lock_address=0x6000_0000) for i in range(5)]
        config = WatchdogConfig.isa_assisted_uaf()
        timed = TraceExpander(config).expand(trace)
        result = OutOfOrderCore(watchdog=config).simulate(timed)
        assert result.macro_instructions == 5

    def test_all_uops_of_one_expansion_share_one_stamp(self):
        config = WatchdogConfig.isa_assisted_uaf()
        expander = TraceExpander(config)
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        timed = expander.expand([DynamicOp(inst, address=0x2000_0000,
                                           lock_address=0x6000_0000)])
        stamps = {t.uop.macro_seq for t in timed}
        assert len(stamps) == 1
        assert stamps.pop() >= 0
