"""Tests for the out-of-order timing model."""

import pytest

from repro.core.config import WatchdogConfig
from repro.isa.instructions import Instruction, Opcode
from repro.isa.microops import MicroOp, UopKind
from repro.isa.registers import int_reg
from repro.memory.hierarchy import PortKind
from repro.pipeline.core import OutOfOrderCore
from repro.sim.trace import DynamicOp, TimedUop, TraceExpander


def alu_chain(length, dependent=True):
    """A chain of ALU µops, serially dependent or fully independent."""
    uops = []
    for i in range(length):
        if dependent:
            dest = int_reg(1)
            srcs = (int_reg(1),)
        else:
            dest = int_reg(1 + (i % 8))
            srcs = (int_reg(9),)
        uops.append(TimedUop(uop=MicroOp(kind=UopKind.ALU, dest=dest, srcs=srcs)))
    return uops


class TestDependenceAndWidth:
    def test_dependent_chain_is_serial(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.disabled())
        result = core.simulate(alu_chain(200, dependent=True))
        assert result.cycles >= 200

    def test_independent_uops_exploit_width(self):
        serial = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(
            alu_chain(200, dependent=True))
        parallel = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(
            alu_chain(200, dependent=False))
        assert parallel.cycles < serial.cycles

    def test_ipc_never_exceeds_machine_width(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.disabled())
        result = core.simulate(alu_chain(500, dependent=False))
        assert result.ipc <= core.machine.issue_width + 1e-9

    def test_empty_trace(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.disabled())
        result = core.simulate([])
        assert result.cycles >= 1
        assert result.total_uops == 0


class TestMemoryBehaviour:
    def test_cache_miss_costs_more_than_hit(self):
        def load_at(addr):
            return TimedUop(uop=MicroOp(kind=UopKind.LOAD, dest=int_reg(1),
                                        srcs=(int_reg(2),)),
                            address=addr, port=PortKind.DATA)
        cold = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(
            [load_at(i * 4096) for i in range(64)])
        warm = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(
            [load_at(0) for _ in range(64)])
        assert cold.cycles > warm.cycles

    def test_memory_access_count(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.disabled())
        trace = [TimedUop(uop=MicroOp(kind=UopKind.LOAD, dest=int_reg(1),
                                      srcs=(int_reg(2),)), address=0x1000)]
        assert core.simulate(trace).memory_accesses == 1

    def test_mispredicted_branch_adds_refill_penalty(self):
        def branch(mispredicted):
            return [TimedUop(uop=MicroOp(kind=UopKind.BRANCH),
                             mispredicted_branch=mispredicted)] + alu_chain(50, False)
        good = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(branch(False))
        bad = OutOfOrderCore(watchdog=WatchdogConfig.disabled()).simulate(branch(True))
        assert bad.cycles > good.cycles


class TestWatchdogEffects:
    def _trace(self, config, instructions=400):
        inst = Instruction(Opcode.LOAD, dest=int_reg(1), srcs=(int_reg(2),))
        ops = [DynamicOp(inst, address=0x2000_0000 + 8 * i, lock_address=0x6000_0000)
               for i in range(instructions)]
        return TraceExpander(config).expand(ops)

    def test_injected_uops_counted(self):
        config = WatchdogConfig.isa_assisted_uaf()
        core = OutOfOrderCore(watchdog=config)
        result = core.simulate(self._trace(config))
        assert result.injected_uops > 0
        assert result.uop_overhead > 0

    def test_watchdog_costs_cycles_over_baseline(self):
        baseline_cfg = WatchdogConfig.disabled()
        watchdog_cfg = WatchdogConfig.conservative_uaf()
        baseline = OutOfOrderCore(watchdog=baseline_cfg).simulate(self._trace(baseline_cfg))
        watchdog = OutOfOrderCore(watchdog=watchdog_cfg).simulate(self._trace(watchdog_cfg))
        assert watchdog.cycles > baseline.cycles
        assert watchdog.total_uops > baseline.total_uops

    def test_lock_cache_config_propagates_to_hierarchy(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.no_lock_cache())
        assert not core.hierarchy.config.lock_cache_enabled
        core = OutOfOrderCore(watchdog=WatchdogConfig.isa_assisted_uaf())
        assert core.hierarchy.config.lock_cache_enabled

    def test_ideal_shadow_config_propagates_to_hierarchy(self):
        core = OutOfOrderCore(watchdog=WatchdogConfig.idealized_shadow())
        assert core.hierarchy.config.ideal_shadow

    def test_port_waits_reported_for_all_pools(self):
        config = WatchdogConfig.isa_assisted_uaf()
        result = OutOfOrderCore(watchdog=config).simulate(self._trace(config, 50))
        assert set(result.port_waits) == {"alu", "branch", "load", "store",
                                          "muldiv", "fp", "lock"}
