"""Tests for the set-associative cache model, TLB, prefetcher and pages."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.pages import PAGE_SIZE, PageAccountant
from repro.memory.prefetcher import PrefetcherConfig, StreamPrefetcher
from repro.memory.tlb import TLB, TLBConfig


def small_cache(size=1024, assoc=2, block=64, latency=3):
    return Cache(CacheConfig("test", size_bytes=size, associativity=assoc,
                             block_bytes=block, hit_latency=latency))


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig("c", 32 * 1024, 8, 64)
        assert config.num_sets == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("c", 1000, 3, 64)
        with pytest.raises(ConfigurationError):
            CacheConfig("c", 0, 1, 64)


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_block_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1030).hit

    def test_lru_eviction(self):
        cache = small_cache(size=128, assoc=1, block=64)  # 2 sets, direct mapped
        cache.access(0x0)       # set 0
        cache.access(0x80)      # set 0 again (evicts 0x0)
        result = cache.access(0x0)
        assert not result.hit

    def test_lru_order_updated_on_hit(self):
        cache = small_cache(size=256, assoc=2, block=64)  # 2 sets, 2-way
        cache.access(0x000)     # set 0 way A
        cache.access(0x100)     # set 0 way B
        cache.access(0x000)     # touch A so B is LRU
        cache.access(0x200)     # set 0: evicts B
        assert cache.access(0x000).hit
        assert not cache.access(0x100).hit

    def test_writeback_counted_for_dirty_eviction(self):
        cache = small_cache(size=128, assoc=1, block=64)
        cache.access(0x0, is_write=True)
        cache.access(0x80)
        assert cache.writebacks == 1

    def test_probe_does_not_change_stats(self):
        cache = small_cache()
        cache.access(0x1000)
        hits_before = cache.hits
        assert cache.probe(0x1000)
        assert cache.hits == hits_before

    def test_install_does_not_count_as_demand(self):
        cache = small_cache()
        cache.install(0x1000)
        assert cache.accesses == 0
        assert cache.access(0x1000).hit

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_flush_empties_cache(self):
        cache = small_cache()
        cache.access(0x0)
        cache.flush()
        assert not cache.probe(0x0)


class TestTLB:
    def test_miss_then_hit(self):
        tlb = TLB(TLBConfig("t", entries=2, miss_penalty=20))
        assert tlb.access(0x1000) == 20
        assert tlb.access(0x1FFF) == 0

    def test_capacity_eviction(self):
        tlb = TLB(TLBConfig("t", entries=2, miss_penalty=20))
        tlb.access(0x0000)
        tlb.access(PAGE_SIZE)
        tlb.access(2 * PAGE_SIZE)   # evicts page 0
        assert tlb.access(0x0000) == 20

    def test_miss_rate(self):
        tlb = TLB(TLBConfig("t", entries=4))
        tlb.access(0)
        tlb.access(0)
        assert tlb.miss_rate == pytest.approx(0.5)


class TestPrefetcher:
    def test_prefetches_next_blocks_into_cache(self):
        cache = small_cache(size=4096, assoc=4)
        prefetcher = StreamPrefetcher(PrefetcherConfig(streams=2, depth=4), cache)
        prefetcher.on_miss(0x0)       # allocates a stream
        prefetcher.on_miss(0x40)      # extends it, prefetches ahead
        assert prefetcher.prefetches_issued == 4
        assert cache.probe(0x80)

    def test_stream_count_bounded(self):
        cache = small_cache()
        prefetcher = StreamPrefetcher(PrefetcherConfig(streams=1, depth=2), cache)
        prefetcher.on_miss(0x0)
        prefetcher.on_miss(0x100000)
        assert len(prefetcher._streams) == 1


class TestPageAccountant:
    def test_word_counting(self):
        pages = PageAccountant()
        pages.touch_data(0x1000, size=16)
        assert pages.data_word_count == 2

    def test_word_overhead_ratio(self):
        pages = PageAccountant()
        pages.touch_data(0x1000, size=8)
        pages.touch_data(0x1008, size=8)
        pages.touch_shadow(1 << 47, size=16)
        assert pages.word_overhead() == pytest.approx(1.0)

    def test_page_overhead_reflects_fragmentation(self):
        pages = PageAccountant()
        pages.touch_data(0, size=8)
        # one shadow word on each of two different pages
        pages.touch_shadow(PAGE_SIZE * 10, size=8)
        pages.touch_shadow(PAGE_SIZE * 20, size=8)
        assert pages.page_overhead() == pytest.approx(2.0)

    def test_empty_accountant_has_zero_overhead(self):
        pages = PageAccountant()
        assert pages.word_overhead() == 0.0
        assert pages.page_overhead() == 0.0
