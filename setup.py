"""Setuptools shim.

Kept so the package installs in environments without the ``wheel`` package
(where PEP 660 editable installs are unavailable): ``python setup.py develop``
or ``pip install -e . --no-build-isolation`` both work.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
